package tensor

import (
	"math"
	"testing"

	"betty/internal/parallel"
	"betty/internal/rng"
)

// The parallel-kernel contract: every op's forward value and backward
// gradients are bitwise-identical at any worker count, because shard
// boundaries depend only on the problem (sizes, dst segments) and every
// accumulation folds in the serial order. These tests run each op at 1 and
// 8 workers over inputs big enough to actually split into multiple shards
// (elemGrain = 32768 elements, segEdgeGrain = 8192 edges) and require
// exact equality of values, loss, and input gradients.

// randTensor fills a rows x cols tensor from a fixed stream.
func randTensor(r *rng.RNG, rows, cols int) *Tensor {
	t := New(rows, cols)
	t.Randn(r, 1)
	return t
}

// segmentEdges builds a sorted-by-destination edge list of nE edges over
// nSeg segments and nSrc sources, plus an unsorted permutation of dst.
func segmentEdges(r *rng.RNG, nE, nSeg, nSrc int) (src, dst, unsorted []int32) {
	src = make([]int32, nE)
	dst = make([]int32, nE)
	for e := 0; e < nE; e++ {
		src[e] = int32(r.Intn(nSrc))
		dst[e] = int32(e * nSeg / nE) // non-decreasing, covers all segments
	}
	unsorted = make([]int32, nE)
	copy(unsorted, dst)
	for i := nE - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		unsorted[i], unsorted[j] = unsorted[j], unsorted[i]
	}
	return src, dst, unsorted
}

// backprop drives a backward pass with non-uniform upstream gradients
// (loss = sum(out * noise)), so accumulation-order bugs can't hide behind
// symmetric values, and returns the flattened (out, loss, grads...) bytes.
func backprop(tp *Tape, out *Var, noise *Tensor, inputs ...*Var) []float32 {
	loss := tp.Sum(tp.Mul(out, Leaf(noise)))
	tp.Backward(loss)
	res := append([]float32(nil), out.Value.Data...)
	res = append(res, loss.Value.Data...)
	for _, in := range inputs {
		if in.Grad != nil {
			res = append(res, in.Grad.Data...)
		}
	}
	return res
}

// parallelOpCases enumerates one closure per parallelized op; each builds
// fresh inputs from a fixed seed, runs forward+backward, and returns every
// result float. Running a case twice must produce identical bytes.
func parallelOpCases() map[string]func() []float32 {
	const (
		m, n = 250, 150 // m*n > elemGrain: elementwise ops split
		nE   = 20000    // > 2*segEdgeGrain: segment ops split
		nSeg = 257
		nSrc = 5000
		feat = 16
	)
	cases := map[string]func() []float32{}

	elementwise := map[string]func(tp *Tape, a, b *Var) *Var{
		"Add":       func(tp *Tape, a, b *Var) *Var { return tp.Add(a, b) },
		"Sub":       func(tp *Tape, a, b *Var) *Var { return tp.Sub(a, b) },
		"Mul":       func(tp *Tape, a, b *Var) *Var { return tp.Mul(a, b) },
		"Scale":     func(tp *Tape, a, b *Var) *Var { return tp.Scale(a, 1.7) },
		"ReLU":      func(tp *Tape, a, b *Var) *Var { return tp.ReLU(a) },
		"LeakyReLU": func(tp *Tape, a, b *Var) *Var { return tp.LeakyReLU(a, 0.2) },
		"Sigmoid":   func(tp *Tape, a, b *Var) *Var { return tp.Sigmoid(a) },
		"Tanh":      func(tp *Tape, a, b *Var) *Var { return tp.Tanh(a) },
	}
	for name, op := range elementwise {
		op := op
		cases[name] = func() []float32 {
			r := rng.New(11)
			tp := NewTape()
			a := Param(randTensor(r, m, n))
			b := Param(randTensor(r, m, n))
			return backprop(tp, op(tp, a, b), randTensor(r, m, n), a, b)
		}
	}

	cases["AddBias"] = func() []float32 {
		r := rng.New(12)
		tp := NewTape()
		a := Param(randTensor(r, m, n))
		b := Param(randTensor(r, 1, n))
		return backprop(tp, tp.AddBias(a, b), randTensor(r, m, n), a, b)
	}
	cases["MatMul"] = func() []float32 {
		r := rng.New(13)
		tp := NewTape()
		a := Param(randTensor(r, m, 64))
		b := Param(randTensor(r, 64, n))
		return backprop(tp, tp.MatMul(a, b), randTensor(r, m, n), a, b)
	}
	cases["ConcatCols"] = func() []float32 {
		r := rng.New(14)
		tp := NewTape()
		a := Param(randTensor(r, m, n))
		b := Param(randTensor(r, m, 40))
		return backprop(tp, tp.ConcatCols(a, b), randTensor(r, m, n+40), a, b)
	}
	cases["SliceRows"] = func() []float32 {
		r := rng.New(15)
		tp := NewTape()
		a := Param(randTensor(r, m, n))
		return backprop(tp, tp.SliceRows(a, 3, m-7), randTensor(r, m-10, n), a)
	}
	cases["SliceCols"] = func() []float32 {
		r := rng.New(16)
		tp := NewTape()
		a := Param(randTensor(r, m, n))
		return backprop(tp, tp.SliceCols(a, 5, n-5), randTensor(r, m, n-10), a)
	}
	cases["GatherRows"] = func() []float32 {
		r := rng.New(17)
		tp := NewTape()
		a := Param(randTensor(r, nSrc, feat))
		idx := make([]int32, nE)
		for i := range idx {
			idx[i] = int32(r.Intn(nSrc))
		}
		return backprop(tp, tp.GatherRows(a, idx), randTensor(r, nE, feat), a)
	}
	cases["ScatterRows"] = func() []float32 {
		r := rng.New(18)
		tp := NewTape()
		rows := 6000
		a := Param(randTensor(r, rows, feat))
		idx := make([]int32, rows)
		for i := range idx {
			idx[i] = int32(i)
		}
		for i := rows - 1; i > 0; i-- { // random distinct placement
			j := r.Intn(i + 1)
			idx[i], idx[j] = idx[j], idx[i]
		}
		return backprop(tp, tp.ScatterRows(a, idx, rows+100), randTensor(r, rows+100, feat), a)
	}
	cases["RowScale"] = func() []float32 {
		r := rng.New(19)
		tp := NewTape()
		rows := 6000
		a := Param(randTensor(r, rows, feat))
		scale := make([]float32, rows)
		for i := range scale {
			scale[i] = float32(r.Float64())
		}
		return backprop(tp, tp.RowScale(a, scale), randTensor(r, rows, feat), a)
	}
	cases["MulRowsVec"] = func() []float32 {
		r := rng.New(20)
		tp := NewTape()
		rows := 6000
		a := Param(randTensor(r, rows, feat))
		w := Param(randTensor(r, rows, 1))
		return backprop(tp, tp.MulRowsVec(a, w), randTensor(r, rows, feat), a, w)
	}
	cases["Dropout"] = func() []float32 {
		r := rng.New(21)
		tp := NewTape()
		a := Param(randTensor(r, m, n))
		drop := rng.New(99) // the mask stream is drawn serially
		return backprop(tp, tp.Dropout(a, 0.4, drop), randTensor(r, m, n), a)
	}
	cases["SoftmaxCrossEntropy"] = func() []float32 {
		r := rng.New(22)
		tp := NewTape()
		rows, classes := 9000, 10
		logits := Param(randTensor(r, rows, classes))
		labels := make([]int32, rows)
		for i := range labels {
			labels[i] = int32(r.Intn(classes+1)) - 1 // some masked (-1)
		}
		loss := tp.SoftmaxCrossEntropy(logits, labels)
		tp.Backward(loss)
		res := append([]float32(nil), loss.Value.Data...)
		return append(res, logits.Grad.Data...)
	}

	segment := map[string]func(tp *Tape, a *Var, src, dst []int32) *Var{
		"SegmentSum": func(tp *Tape, a *Var, src, dst []int32) *Var {
			return tp.SegmentSum(a, dst, nSeg)
		},
		"SegmentMax": func(tp *Tape, a *Var, src, dst []int32) *Var {
			return tp.SegmentMax(a, dst, nSeg)
		},
	}
	for name, op := range segment {
		op := op
		for _, sorted := range []bool{true, false} {
			seed := uint64(23)
			key := name + "/sorted"
			if !sorted {
				key = name + "/unsorted" // single serial shard fallback
			}
			sortedCase := sorted
			cases[key] = func() []float32 {
				r := rng.New(seed)
				tp := NewTape()
				src, dst, unsorted := segmentEdges(r, nE, nSeg, nSrc)
				_ = src
				d := dst
				if !sortedCase {
					d = unsorted
				}
				a := Param(randTensor(r, nE, feat))
				return backprop(tp, op(tp, a, src, d), randTensor(r, nSeg, feat), a)
			}
		}
	}
	cases["GatherSegmentSum"] = func() []float32 {
		r := rng.New(24)
		tp := NewTape()
		src, dst, _ := segmentEdges(r, nE, nSeg, nSrc)
		a := Param(randTensor(r, nSrc, feat))
		return backprop(tp, tp.GatherSegmentSum(a, src, dst, nSeg), randTensor(r, nSeg, feat), a)
	}
	cases["SegmentSoftmax"] = func() []float32 {
		r := rng.New(25)
		tp := NewTape()
		_, dst, _ := segmentEdges(r, nE, nSeg, nSrc)
		scores := Param(randTensor(r, nE, 1))
		return backprop(tp, tp.SegmentSoftmax(scores, dst, nSeg), randTensor(r, nE, 1), scores)
	}
	return cases
}

// TestParallelKernelsBitwiseDeterministic runs every parallelized op at 1
// and 8 workers and requires identical bytes for forward values, loss, and
// gradients.
func TestParallelKernelsBitwiseDeterministic(t *testing.T) {
	for name, run := range parallelOpCases() {
		t.Run(name, func(t *testing.T) {
			parallel.SetWorkers(1)
			serial := run()
			parallel.SetWorkers(8)
			defer parallel.SetWorkers(parallel.SetWorkers(0))
			par := run()
			if len(serial) != len(par) {
				t.Fatalf("result sizes differ: %d vs %d", len(serial), len(par))
			}
			for i := range serial {
				if math.Float32bits(serial[i]) != math.Float32bits(par[i]) {
					t.Fatalf("float %d differs: serial %v vs 8 workers %v", i, serial[i], par[i])
				}
			}
		})
	}
}

// TestParallelKernelsPoolInvariant runs every op with the buffer pool on
// (twice, so the second pass reuses recycled buffers) and off, requiring
// identical bytes: acquired slices are zeroed, so pooling is invisible.
func TestParallelKernelsPoolInvariant(t *testing.T) {
	for name, run := range parallelOpCases() {
		t.Run(name, func(t *testing.T) {
			defer SetPooling(SetPooling(false))
			unpooled := run()
			SetPooling(true)
			DrainPool()
			run() // fill the pool
			pooled := run()
			if len(unpooled) != len(pooled) {
				t.Fatalf("result sizes differ: %d vs %d", len(unpooled), len(pooled))
			}
			for i := range unpooled {
				if math.Float32bits(unpooled[i]) != math.Float32bits(pooled[i]) {
					t.Fatalf("float %d differs: pool off %v vs on %v", i, unpooled[i], pooled[i])
				}
			}
		})
	}
}

// TestSegmentBounds checks the shard decomposition invariants directly:
// boundaries fall only where dst changes, every shard has >= grain edges
// (except the last), and unsorted input collapses to one shard.
func TestSegmentBounds(t *testing.T) {
	dst := make([]int32, 10000)
	for i := range dst {
		dst[i] = int32(i / 37)
	}
	bounds := segmentBounds(dst, 1024)
	if bounds[0] != 0 || bounds[len(bounds)-1] != len(dst) {
		t.Fatalf("bounds do not cover the range: %v", bounds)
	}
	for s := 1; s < len(bounds)-1; s++ {
		b := bounds[s]
		if dst[b] == dst[b-1] {
			t.Fatalf("boundary %d splits segment %d", b, dst[b])
		}
		if b-bounds[s-1] < 1024 {
			t.Fatalf("shard %d has %d < grain edges", s, b-bounds[s-1])
		}
	}
	unsorted := []int32{3, 1, 2}
	if got := segmentBounds(unsorted, 1); len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Fatalf("unsorted dst should collapse to one shard, got %v", got)
	}
	if got := segmentBounds(nil, 8); got != nil {
		t.Fatalf("empty dst should have no shards, got %v", got)
	}
}

// TestInvertIndex checks the counting-sort inverse: each target's
// positions are ascending and exactly the occurrences of that target.
func TestInvertIndex(t *testing.T) {
	idx := []int32{2, 0, 2, 1, 0, 2}
	cnt, pos := invertIndex(idx, 4)
	want := [][]int32{{1, 4}, {3}, {0, 2, 5}, {}}
	for r := 0; r < 4; r++ {
		got := pos[cnt[r]:cnt[r+1]]
		if len(got) != len(want[r]) {
			t.Fatalf("row %d: got %v want %v", r, got, want[r])
		}
		for i := range got {
			if got[i] != want[r][i] {
				t.Fatalf("row %d: got %v want %v", r, got, want[r])
			}
		}
	}
}
