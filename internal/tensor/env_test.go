package tensor

import "testing"

func TestParsePoolMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want bool
		ok   bool
	}{
		{"", true, true}, // unset: pooling defaults to on
		{"1", true, true},
		{"t", true, true},
		{"true", true, true},
		{"TRUE", true, true},
		{"0", false, true},
		{"f", false, true},
		{"false", false, true},
		{"yes", false, false},
		{"on", false, false},
		{"2", false, false},
		{" 1", false, false},
	} {
		got, err := ParsePoolMode(tc.in)
		if tc.ok && (err != nil || got != tc.want) {
			t.Errorf("ParsePoolMode(%q) = %v, %v; want %v, nil", tc.in, got, err, tc.want)
		}
		if !tc.ok && err == nil {
			t.Errorf("ParsePoolMode(%q) = %v, nil; want error", tc.in, got)
		}
	}
}
