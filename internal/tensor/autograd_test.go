package tensor

import (
	"math"
	"testing"

	"betty/internal/rng"
)

// numericGrad estimates d(loss)/d(param[i]) by central differences, where
// loss is recomputed from scratch by forward.
func numericGrad(param *Tensor, i int, forward func() float64) float64 {
	const eps = 1e-3
	orig := param.Data[i]
	param.Data[i] = orig + eps
	lp := forward()
	param.Data[i] = orig - eps
	lm := forward()
	param.Data[i] = orig
	return (lp - lm) / (2 * eps)
}

// checkGrads runs backward once and compares every parameter gradient
// against a finite-difference estimate.
func checkGrads(t *testing.T, params []*Var, build func(tp *Tape) *Var) {
	t.Helper()
	tp := NewTape()
	loss := build(tp)
	tp.Backward(loss)
	forward := func() float64 {
		tpn := NewTape()
		return float64(build(tpn).Value.Data[0])
	}
	for pi, p := range params {
		if p.Grad == nil {
			t.Fatalf("param %d has nil grad", pi)
		}
		for i := range p.Value.Data {
			want := numericGrad(p.Value, i, forward)
			got := float64(p.Grad.Data[i])
			if math.Abs(want-got) > 2e-2*(1+math.Abs(want)) {
				t.Fatalf("param %d elem %d: analytic %v vs numeric %v", pi, i, got, want)
			}
		}
	}
}

func TestGradMatMulChain(t *testing.T) {
	r := rng.New(1)
	w1 := Param(New(4, 3))
	w2 := Param(New(3, 2))
	x := Leaf(New(5, 4))
	w1.Value.Randn(r, 0.5)
	w2.Value.Randn(r, 0.5)
	x.Value.Randn(r, 0.5)
	checkGrads(t, []*Var{w1, w2}, func(tp *Tape) *Var {
		h := tp.MatMul(x, w1)
		h = tp.Tanh(h)
		o := tp.MatMul(h, w2)
		return tp.Mean(tp.Mul(o, o))
	})
}

func TestGradElementwiseOps(t *testing.T) {
	r := rng.New(2)
	a := Param(New(3, 3))
	b := Param(New(3, 3))
	a.Value.Randn(r, 1)
	b.Value.Randn(r, 1)
	checkGrads(t, []*Var{a, b}, func(tp *Tape) *Var {
		s := tp.Add(a, b)
		d := tp.Sub(a, b)
		m := tp.Mul(s, d) // a² - b²
		sc := tp.Scale(m, 0.5)
		return tp.Sum(sc)
	})
}

func TestGradActivations(t *testing.T) {
	r := rng.New(3)
	a := Param(New(4, 4))
	a.Value.Randn(r, 1.5)
	// shift away from the ReLU kink to keep finite differences meaningful
	for i := range a.Value.Data {
		if math.Abs(float64(a.Value.Data[i])) < 0.05 {
			a.Value.Data[i] = 0.1
		}
	}
	checkGrads(t, []*Var{a}, func(tp *Tape) *Var {
		h := tp.ReLU(a)
		h = tp.Sigmoid(h)
		h = tp.Tanh(h)
		h2 := tp.LeakyReLU(a, 0.2)
		return tp.Sum(tp.Add(h, h2))
	})
}

func TestGradBiasAndConcat(t *testing.T) {
	r := rng.New(4)
	a := Param(New(3, 2))
	b := Param(New(3, 3))
	bias := Param(New(1, 5))
	a.Value.Randn(r, 1)
	b.Value.Randn(r, 1)
	bias.Value.Randn(r, 1)
	checkGrads(t, []*Var{a, b, bias}, func(tp *Tape) *Var {
		c := tp.ConcatCols(a, b)
		c = tp.AddBias(c, bias)
		return tp.Sum(tp.Mul(c, c))
	})
}

func TestGradGatherAndSlice(t *testing.T) {
	r := rng.New(5)
	a := Param(New(6, 3))
	a.Value.Randn(r, 1)
	idx := []int32{0, 2, 2, 5, 1}
	checkGrads(t, []*Var{a}, func(tp *Tape) *Var {
		g := tp.GatherRows(a, idx)
		s := tp.SliceRows(g, 1, 4)
		return tp.Sum(tp.Mul(s, s))
	})
}

func TestGradSliceCols(t *testing.T) {
	r := rng.New(21)
	a := Param(New(3, 8))
	a.Value.Randn(r, 1)
	checkGrads(t, []*Var{a}, func(tp *Tape) *Var {
		left := tp.SliceCols(a, 0, 3)
		mid := tp.SliceCols(a, 3, 6)
		s := tp.Mul(left, mid)
		return tp.Sum(tp.Mul(s, s))
	})
}

func TestSliceColsPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SliceCols out of range should panic")
		}
	}()
	tp := NewTape()
	tp.SliceCols(Leaf(New(2, 4)), 2, 9)
}

func TestGradScatterRows(t *testing.T) {
	r := rng.New(22)
	a := Param(New(3, 2))
	a.Value.Randn(r, 1)
	idx := []int32{4, 0, 2}
	checkGrads(t, []*Var{a}, func(tp *Tape) *Var {
		s := tp.ScatterRows(a, idx, 5)
		return tp.Sum(tp.Mul(s, s))
	})
}

func TestScatterRowsRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate scatter index should panic")
		}
	}()
	tp := NewTape()
	tp.ScatterRows(Leaf(New(2, 2)), []int32{1, 1}, 3)
}

func TestScatterRowsUnassignedRowsZero(t *testing.T) {
	tp := NewTape()
	a := Leaf(FromSlice(1, 2, []float32{7, 8}))
	out := tp.ScatterRows(a, []int32{2}, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 2; j++ {
			want := float32(0)
			if i == 2 {
				want = a.Value.At(0, j)
			}
			if math.Float32bits(out.Value.At(i, j)) != math.Float32bits(want) {
				t.Fatalf("scatter[%d][%d] = %v", i, j, out.Value.At(i, j))
			}
		}
	}
}

func TestTapeValueBytes(t *testing.T) {
	tp := NewTape()
	a := Leaf(New(4, 4))
	b := tp.Scale(a, 2) // 16 values
	_ = tp.Add(b, b)    // 16 values
	if tp.ValueBytes() != 2*16*4 {
		t.Fatalf("ValueBytes = %d, want 128", tp.ValueBytes())
	}
}

func TestGradSegmentOps(t *testing.T) {
	r := rng.New(6)
	a := Param(New(7, 3))
	a.Value.Randn(r, 1)
	dst := []int32{0, 0, 1, 2, 2, 2, 1}
	checkGrads(t, []*Var{a}, func(tp *Tape) *Var {
		sum := tp.SegmentSum(a, dst, 3)
		return tp.Sum(tp.Mul(sum, sum))
	})
}

func TestGradSegmentMax(t *testing.T) {
	r := rng.New(7)
	a := Param(New(6, 2))
	a.Value.Randn(r, 2)
	dst := []int32{0, 0, 1, 1, 1, 2}
	checkGrads(t, []*Var{a}, func(tp *Tape) *Var {
		mx := tp.SegmentMax(a, dst, 3)
		return tp.Sum(tp.Mul(mx, mx))
	})
}

func TestGradGatherSegmentSumMatchesCompose(t *testing.T) {
	r := rng.New(8)
	src := []int32{0, 1, 2, 3, 0, 2}
	dst := []int32{0, 0, 1, 1, 1, 0}
	mk := func() *Var {
		p := Param(New(4, 3))
		return p
	}
	a1, a2 := mk(), mk()
	a1.Value.Randn(r, 1)
	copy(a2.Value.Data, a1.Value.Data)

	tp1 := NewTape()
	fused := tp1.GatherSegmentSum(a1, src, dst, 2)
	l1 := tp1.Sum(tp1.Mul(fused, fused))
	tp1.Backward(l1)

	tp2 := NewTape()
	gathered := tp2.GatherRows(a2, src)
	summed := tp2.SegmentSum(gathered, dst, 2)
	l2 := tp2.Sum(tp2.Mul(summed, summed))
	tp2.Backward(l2)

	if !almostEq(float64(l1.Value.Data[0]), float64(l2.Value.Data[0]), 1e-5) {
		t.Fatalf("fused loss %v != composed loss %v", l1.Value.Data[0], l2.Value.Data[0])
	}
	for i := range a1.Grad.Data {
		if !almostEq(float64(a1.Grad.Data[i]), float64(a2.Grad.Data[i]), 1e-4) {
			t.Fatalf("grad mismatch at %d: %v vs %v", i, a1.Grad.Data[i], a2.Grad.Data[i])
		}
	}
}

func TestGradRowScaleAndMulRowsVec(t *testing.T) {
	r := rng.New(9)
	a := Param(New(4, 3))
	w := Param(New(4, 1))
	a.Value.Randn(r, 1)
	w.Value.Randn(r, 1)
	scale := []float32{0.5, 1, 2, 0.25}
	checkGrads(t, []*Var{a, w}, func(tp *Tape) *Var {
		rs := tp.RowScale(a, scale)
		mv := tp.MulRowsVec(rs, w)
		return tp.Sum(tp.Mul(mv, mv))
	})
}

func TestGradSegmentSoftmax(t *testing.T) {
	r := rng.New(10)
	s := Param(New(6, 1))
	s.Value.Randn(r, 1)
	dst := []int32{0, 0, 0, 1, 1, 2}
	checkGrads(t, []*Var{s}, func(tp *Tape) *Var {
		p := tp.SegmentSoftmax(s, dst, 3)
		// weight each probability so the loss is not trivially constant
		weights := Leaf(FromSlice(6, 1, []float32{1, 2, 3, 4, 5, 6}))
		return tp.Sum(tp.Mul(p, weights))
	})
}

func TestSegmentSoftmaxSumsToOne(t *testing.T) {
	r := rng.New(11)
	s := Leaf(New(10, 1))
	s.Value.Randn(r, 3)
	dst := []int32{0, 0, 1, 1, 1, 2, 2, 2, 2, 3}
	tp := NewTape()
	p := tp.SegmentSoftmax(s, dst, 4)
	sums := make([]float64, 4)
	for e, d := range dst {
		sums[d] += float64(p.Value.Data[e])
	}
	for i, v := range sums {
		if !almostEq(v, 1, 1e-5) {
			t.Fatalf("segment %d sums to %v", i, v)
		}
	}
}

func TestGradSoftmaxCrossEntropy(t *testing.T) {
	r := rng.New(12)
	logits := Param(New(5, 4))
	logits.Value.Randn(r, 1)
	labels := []int32{0, 3, 2, -1, 1} // one masked row
	checkGrads(t, []*Var{logits}, func(tp *Tape) *Var {
		return tp.SoftmaxCrossEntropy(logits, labels)
	})
}

func TestCrossEntropyMaskedRowsGetNoGrad(t *testing.T) {
	logits := Param(New(2, 3))
	logits.Value.Randn(rng.New(1), 1)
	labels := []int32{-1, 1}
	tp := NewTape()
	loss := tp.SoftmaxCrossEntropy(logits, labels)
	tp.Backward(loss)
	for j := 0; j < 3; j++ {
		if logits.Grad.At(0, j) != 0 {
			t.Fatal("masked row received gradient")
		}
	}
}

// Gradient accumulation: two backward passes without ZeroGrad must sum.
func TestGradAccumulationAcrossTapes(t *testing.T) {
	w := Param(New(2, 2))
	w.Value.Randn(rng.New(13), 1)
	x := Leaf(FromSlice(1, 2, []float32{1, 2}))

	run := func() {
		tp := NewTape()
		h := tp.MatMul(x, w)
		loss := tp.Sum(h)
		tp.Backward(loss)
	}
	run()
	first := w.Grad.Clone()
	run()
	for i := range w.Grad.Data {
		if !almostEq(float64(w.Grad.Data[i]), 2*float64(first.Data[i]), 1e-6) {
			t.Fatalf("accumulated grad %v != 2x single grad %v", w.Grad.Data[i], first.Data[i])
		}
	}
	w.ZeroGrad()
	for _, v := range w.Grad.Data {
		if v != 0 {
			t.Fatal("ZeroGrad did not clear")
		}
	}
}

// The key Betty property: gradient of mean loss over a batch equals the
// weighted sum of micro-batch gradients. Here the "model" is a linear map
// and loss is mean squared activation; we split 6 rows into 2+4.
func TestMicroBatchGradientEquivalence(t *testing.T) {
	r := rng.New(14)
	w := Param(New(3, 2))
	w.Value.Randn(r, 1)
	x := New(6, 3)
	x.Randn(r, 1)
	labels := []int32{0, 1, 0, 1, 1, 0}

	fullGrad := func() *Tensor {
		w.ZeroGrad()
		tp := NewTape()
		out := tp.MatMul(Leaf(x), w)
		loss := tp.SoftmaxCrossEntropy(out, labels)
		tp.Backward(loss)
		return w.Grad.Clone()
	}
	full := fullGrad()

	w.ZeroGrad()
	splits := [][2]int{{0, 2}, {2, 6}}
	for _, sp := range splits {
		lo, hi := sp[0], sp[1]
		sub := New(hi-lo, 3)
		copy(sub.Data, x.Data[lo*3:hi*3])
		tp := NewTape()
		out := tp.MatMul(Leaf(sub), w)
		loss := tp.SoftmaxCrossEntropy(out, labels[lo:hi])
		// scale by micro-batch fraction so the accumulated gradient equals
		// the gradient of the full-batch mean loss
		loss = tp.Scale(loss, float32(hi-lo)/6)
		tp.Backward(loss)
	}
	for i := range full.Data {
		if !almostEq(float64(full.Data[i]), float64(w.Grad.Data[i]), 1e-4) {
			t.Fatalf("micro-batch grad[%d] %v != full %v", i, w.Grad.Data[i], full.Data[i])
		}
	}
}

func TestDropoutZeroProbIsIdentity(t *testing.T) {
	a := Param(New(3, 3))
	a.Value.Randn(rng.New(15), 1)
	tp := NewTape()
	out := tp.Dropout(a, 0, rng.New(1))
	if out != a {
		t.Fatal("Dropout(p=0) should return input unchanged")
	}
}

func TestDropoutScalesSurvivors(t *testing.T) {
	a := Leaf(New(100, 10))
	a.Value.Fill(1)
	tp := NewTape()
	out := tp.Dropout(a, 0.5, rng.New(16))
	zeros, scaled := 0, 0
	for _, v := range out.Value.Data {
		switch v {
		case 0:
			zeros++
		case 2:
			scaled++
		default:
			t.Fatalf("unexpected dropout value %v", v)
		}
	}
	if zeros == 0 || scaled == 0 {
		t.Fatal("dropout produced degenerate mask")
	}
}

func TestBackwardRequiresScalar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Backward should panic on non-scalar loss")
		}
	}()
	tp := NewTape()
	a := Param(New(2, 2))
	out := tp.Scale(a, 2)
	tp.Backward(out)
}
