// Package tensor implements the dense numerical substrate for GNN training:
// a row-major float32 matrix type, the raw math kernels (matmul, elementwise
// maps, segment reductions over graph edges), and a reverse-mode automatic
// differentiation tape built on top of them.
//
// The package replaces the role PyTorch plays in the original Betty
// implementation. It is deliberately minimal — 2-D tensors only, float32
// only — but the autograd is a real reverse-mode tape, so the gradient
// accumulation equivalence that micro-batch training relies on (sum of
// micro-batch gradients == full-batch gradient) holds by construction.
package tensor

import (
	"fmt"
	"math"

	"betty/internal/parallel"
	"betty/internal/rng"
)

// Tensor is a dense row-major matrix of float32 values.
// A Tensor with Cols == 1 doubles as a column vector.
type Tensor struct {
	// RowsN and ColsN are the dimensions. Data has length RowsN*ColsN.
	RowsN, ColsN int
	Data         []float32
}

// New returns a zero-initialized rows x cols tensor.
func New(rows, cols int) *Tensor {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &Tensor{RowsN: rows, ColsN: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps data (not copied) as a rows x cols tensor.
func FromSlice(rows, cols int, data []float32) *Tensor {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice %dx%d needs %d values, got %d", rows, cols, rows*cols, len(data)))
	}
	return &Tensor{RowsN: rows, ColsN: cols, Data: data}
}

// Rows returns the number of rows.
func (t *Tensor) Rows() int { return t.RowsN }

// Cols returns the number of columns.
func (t *Tensor) Cols() int { return t.ColsN }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return t.RowsN * t.ColsN }

// At returns the element at row i, column j.
func (t *Tensor) At(i, j int) float32 { return t.Data[i*t.ColsN+j] }

// Set assigns the element at row i, column j.
func (t *Tensor) Set(i, j int, v float32) { t.Data[i*t.ColsN+j] = v }

// Row returns row i as a slice aliasing the tensor's storage.
func (t *Tensor) Row(i int) []float32 { return t.Data[i*t.ColsN : (i+1)*t.ColsN] }

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.RowsN, t.ColsN)
	copy(c.Data, t.Data)
	return c
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// SameShape reports whether t and o have identical dimensions.
func (t *Tensor) SameShape(o *Tensor) bool {
	return t.RowsN == o.RowsN && t.ColsN == o.ColsN
}

// String renders small tensors fully and large ones as a shape summary.
func (t *Tensor) String() string {
	if t.Len() <= 64 {
		return fmt.Sprintf("Tensor(%dx%d)%v", t.RowsN, t.ColsN, t.Data)
	}
	return fmt.Sprintf("Tensor(%dx%d)", t.RowsN, t.ColsN)
}

// Randn fills t with normal deviates scaled by std.
func (t *Tensor) Randn(r *rng.RNG, std float64) {
	for i := range t.Data {
		t.Data[i] = float32(r.Norm() * std)
	}
}

// XavierInit fills t with the Glorot/Xavier uniform initialization for a
// weight matrix of shape [fanIn, fanOut].
func (t *Tensor) XavierInit(r *rng.RNG) {
	limit := math.Sqrt(6.0 / float64(t.RowsN+t.ColsN))
	for i := range t.Data {
		t.Data[i] = float32((2*r.Float64() - 1) * limit)
	}
}

// --- raw kernels (no autograd) ---

// MatMul computes a @ b into a new tensor. Panics on shape mismatch.
func MatMul(a, b *Tensor) *Tensor {
	if a.ColsN != b.RowsN {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %dx%d @ %dx%d", a.RowsN, a.ColsN, b.RowsN, b.ColsN))
	}
	out := New(a.RowsN, b.ColsN)
	matMulInto(out, a, b, false)
	return out
}

// rowGrain sizes the row blocks the parallel kernels hand to each worker:
// large enough that a shard amortizes dispatch overhead (~64k multiply-
// adds), small enough that big matrices fan out across every core. Each
// kernel passes its *own* per-output-row multiply-add count — the forward
// kernel's K·N, MatMulTA's K·N with K = rows(a), MatMulTB's K·M — rather
// than sharing the forward kernel's formula, so shards carry comparable
// work in every variant. It is a function of the row cost only — never of
// the worker count — so the shard structure, and with it the result, is
// identical for any parallelism.
func rowGrain(flopsPerRow int) int {
	const target = 1 << 16
	g := target / (flopsPerRow + 1)
	if g < 1 {
		g = 1
	}
	return g
}

// matMulInto computes out (+)= a @ b. When accum is true the product is
// added to out instead of overwriting it.
//
// The kernel is register-blocked over k: four consecutive multipliers of a
// row of a are held in registers and applied to four rows of b in one pass
// over the output row, so each output element is loaded and stored once
// per four accumulation terms instead of once per term. The adds within a
// block are explicitly sequenced ascending in k — v = ((v+p0)+p1)+p2)+p3 —
// so every output element accumulates its terms in exactly the serial
// ikj order: the tiling changes memory traffic, never a single rounding.
// Row blocks run in parallel; each worker owns a disjoint range of output
// rows, so the result is bitwise-identical for any worker count.
func matMulInto(out, a, b *Tensor, accum bool) {
	n := b.ColsN
	kDim := a.ColsN
	if !accum {
		out.Zero()
	}
	parallel.For(a.RowsN, rowGrain(kDim*n), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			orow := out.Row(i)
			k := 0
			for ; k+4 <= kDim; k += 4 {
				a0, a1, a2, a3 := arow[k], arow[k+1], arow[k+2], arow[k+3]
				b0 := b.Data[k*n : k*n+n]
				b1 := b.Data[(k+1)*n : (k+1)*n+n]
				b2 := b.Data[(k+2)*n : (k+2)*n+n]
				b3 := b.Data[(k+3)*n : (k+3)*n+n]
				//bettyvet:ok floateq sparsity fast path: skipping exactly-zero multipliers is value-preserving for finite inputs
				if a0 != 0 && a1 != 0 && a2 != 0 && a3 != 0 {
					for j := range orow {
						v := orow[j]
						v += a0 * b0[j]
						v += a1 * b1[j]
						v += a2 * b2[j]
						v += a3 * b3[j]
						orow[j] = v
					}
					continue
				}
				//bettyvet:ok floateq mixed block: zero multipliers must be skipped term-by-term, not multiplied through — 0*Inf is NaN and +0 can flip a -0 accumulator
				if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
					continue
				}
				// Mixed block: keep the single pass over the output row but
				// guard each term, so the per-element term sequence is exactly
				// the serial kernel's (zero terms skipped, ascending k). The
				// guards are j-invariant, so they predict perfectly.
				for j := range orow {
					v := orow[j]
					//bettyvet:ok floateq sparsity fast path: skipping an exactly-zero multiplier is value-preserving for finite inputs
					if a0 != 0 {
						v += a0 * b0[j]
					}
					//bettyvet:ok floateq sparsity fast path: skipping an exactly-zero multiplier is value-preserving for finite inputs
					if a1 != 0 {
						v += a1 * b1[j]
					}
					//bettyvet:ok floateq sparsity fast path: skipping an exactly-zero multiplier is value-preserving for finite inputs
					if a2 != 0 {
						v += a2 * b2[j]
					}
					//bettyvet:ok floateq sparsity fast path: skipping an exactly-zero multiplier is value-preserving for finite inputs
					if a3 != 0 {
						v += a3 * b3[j]
					}
					orow[j] = v
				}
			}
			for ; k < kDim; k++ {
				av := arow[k]
				//bettyvet:ok floateq sparsity fast path: skipping an exactly-zero multiplier is value-preserving for finite inputs
				if av == 0 {
					continue
				}
				brow := b.Data[k*n : k*n+n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	})
}

// MatMulTA computes aᵀ @ b into a new tensor.
func MatMulTA(a, b *Tensor) *Tensor {
	out := New(a.ColsN, b.ColsN)
	matMulTAInto(out, a, b, false)
	return out
}

// matMulTAInto computes out (+)= aᵀ @ b. Workers own disjoint ranges of
// output rows (= columns of a). The loop is output-row-outer — earlier
// revisions walked k in the outer loop, which made every shard pay a full
// pass over a and b regardless of how few output rows it owned, defeating
// the grain model for narrow shards. Per output row the kernel blocks k by
// four (strided a[k][i] loads held in registers, one pass over the output
// row per block) with the same explicitly sequenced ascending-k adds and
// per-term zero-skip as the serial kernel, so each output element
// accumulates its terms in the identical order at any worker count. With
// accum the product is added to out — the backward pass writes straight
// into gradient tensors without a temporary.
func matMulTAInto(out, a, b *Tensor, accum bool) {
	if a.RowsN != b.RowsN {
		panic(fmt.Sprintf("tensor: MatMulTA shape mismatch %dx%d ᵀ@ %dx%d", a.RowsN, a.ColsN, b.RowsN, b.ColsN))
	}
	n := b.ColsN
	m := a.ColsN
	kDim := a.RowsN
	if !accum {
		out.Zero()
	}
	// flops per output row = kDim*n: row i of the output is a length-kDim
	// reduction over n-wide b rows, independent of m.
	parallel.For(m, rowGrain(kDim*n), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			orow := out.Data[i*n : i*n+n]
			k := 0
			for ; k+4 <= kDim; k += 4 {
				a0 := a.Data[k*m+i]
				a1 := a.Data[(k+1)*m+i]
				a2 := a.Data[(k+2)*m+i]
				a3 := a.Data[(k+3)*m+i]
				b0 := b.Data[k*n : k*n+n]
				b1 := b.Data[(k+1)*n : (k+1)*n+n]
				b2 := b.Data[(k+2)*n : (k+2)*n+n]
				b3 := b.Data[(k+3)*n : (k+3)*n+n]
				//bettyvet:ok floateq sparsity fast path: skipping exactly-zero multipliers is value-preserving for finite inputs
				if a0 != 0 && a1 != 0 && a2 != 0 && a3 != 0 {
					for j := range orow {
						v := orow[j]
						v += a0 * b0[j]
						v += a1 * b1[j]
						v += a2 * b2[j]
						v += a3 * b3[j]
						orow[j] = v
					}
					continue
				}
				//bettyvet:ok floateq mixed block: zero multipliers must be skipped term-by-term, not multiplied through — 0*Inf is NaN and +0 can flip a -0 accumulator
				if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
					continue
				}
				for j := range orow {
					v := orow[j]
					//bettyvet:ok floateq sparsity fast path: skipping an exactly-zero multiplier is value-preserving for finite inputs
					if a0 != 0 {
						v += a0 * b0[j]
					}
					//bettyvet:ok floateq sparsity fast path: skipping an exactly-zero multiplier is value-preserving for finite inputs
					if a1 != 0 {
						v += a1 * b1[j]
					}
					//bettyvet:ok floateq sparsity fast path: skipping an exactly-zero multiplier is value-preserving for finite inputs
					if a2 != 0 {
						v += a2 * b2[j]
					}
					//bettyvet:ok floateq sparsity fast path: skipping an exactly-zero multiplier is value-preserving for finite inputs
					if a3 != 0 {
						v += a3 * b3[j]
					}
					orow[j] = v
				}
			}
			for ; k < kDim; k++ {
				av := a.Data[k*m+i]
				//bettyvet:ok floateq sparsity fast path: skipping an exactly-zero multiplier is value-preserving for finite inputs
				if av == 0 {
					continue
				}
				brow := b.Data[k*n : k*n+n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	})
}

// MatMulTB computes a @ bᵀ into a new tensor.
func MatMulTB(a, b *Tensor) *Tensor {
	out := New(a.RowsN, b.RowsN)
	matMulTBInto(out, a, b, false)
	return out
}

// matMulTBInto computes out (+)= a @ bᵀ with workers owning disjoint
// output-row ranges. Four output columns (= rows of b) are computed per
// pass over the a row, so each a element is loaded once per four dot
// products; every dot product keeps its own accumulator summed in
// ascending k order, so each output element is the identical left-to-right
// sum at any worker count and any blocking.
func matMulTBInto(out, a, b *Tensor, accum bool) {
	if a.ColsN != b.ColsN {
		panic(fmt.Sprintf("tensor: MatMulTB shape mismatch %dx%d @ᵀ %dx%d", a.RowsN, a.ColsN, b.RowsN, b.ColsN))
	}
	kDim := a.ColsN
	// flops per output row = kDim*rows(b): one length-kDim dot product per
	// row of b, independent of cols(b)'s role in the forward kernel.
	parallel.For(a.RowsN, rowGrain(kDim*b.RowsN), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			orow := out.Row(i)
			j := 0
			for ; j+4 <= b.RowsN; j += 4 {
				b0 := b.Data[j*kDim : j*kDim+kDim]
				b1 := b.Data[(j+1)*kDim : (j+1)*kDim+kDim]
				b2 := b.Data[(j+2)*kDim : (j+2)*kDim+kDim]
				b3 := b.Data[(j+3)*kDim : (j+3)*kDim+kDim]
				var s0, s1, s2, s3 float32
				for k, av := range arow {
					s0 += av * b0[k]
					s1 += av * b1[k]
					s2 += av * b2[k]
					s3 += av * b3[k]
				}
				if accum {
					orow[j] += s0
					orow[j+1] += s1
					orow[j+2] += s2
					orow[j+3] += s3
				} else {
					orow[j] = s0
					orow[j+1] = s1
					orow[j+2] = s2
					orow[j+3] = s3
				}
			}
			for ; j < b.RowsN; j++ {
				brow := b.Row(j)
				var s float32
				for k, av := range arow {
					s += av * brow[k]
				}
				if accum {
					orow[j] += s
				} else {
					orow[j] = s
				}
			}
		}
	})
}

// Transpose returns aᵀ as a new tensor.
func Transpose(a *Tensor) *Tensor {
	out := New(a.ColsN, a.RowsN)
	for i := 0; i < a.RowsN; i++ {
		for j := 0; j < a.ColsN; j++ {
			out.Data[j*a.RowsN+i] = a.Data[i*a.ColsN+j]
		}
	}
	return out
}

// elemGrain is the element count per shard for the parallel elementwise
// kernels: big enough to amortize a goroutine dispatch, small enough that
// activation-sized tensors fan out. Like rowGrain it is a constant of the
// problem, never of the worker count, so shard structure — and results —
// are identical for any parallelism.
const elemGrain = 1 << 15

// elemRowGrain returns a row grain targeting ~elemGrain elements per shard
// for kernels that must shard on whole rows.
func elemRowGrain(cols int) int {
	g := elemGrain / (cols + 1)
	if g < 1 {
		g = 1
	}
	return g
}

// AddInto computes dst += src elementwise. Shards own disjoint element
// ranges, so the parallel result is bitwise-identical to serial.
func AddInto(dst, src *Tensor) {
	if !dst.SameShape(src) {
		panic("tensor: AddInto shape mismatch")
	}
	d, s := dst.Data, src.Data
	parallel.For(len(s), elemGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			d[i] += s[i]
		}
	})
}

// AXPY computes dst += alpha * src elementwise.
func AXPY(dst *Tensor, alpha float32, src *Tensor) {
	if !dst.SameShape(src) {
		panic("tensor: AXPY shape mismatch")
	}
	d, s := dst.Data, src.Data
	parallel.For(len(s), elemGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			d[i] += alpha * s[i]
		}
	})
}
