// Package tensor implements the dense numerical substrate for GNN training:
// a row-major float32 matrix type, the raw math kernels (matmul, elementwise
// maps, segment reductions over graph edges), and a reverse-mode automatic
// differentiation tape built on top of them.
//
// The package replaces the role PyTorch plays in the original Betty
// implementation. It is deliberately minimal — 2-D tensors only, float32
// only — but the autograd is a real reverse-mode tape, so the gradient
// accumulation equivalence that micro-batch training relies on (sum of
// micro-batch gradients == full-batch gradient) holds by construction.
package tensor

import (
	"fmt"
	"math"

	"betty/internal/parallel"
	"betty/internal/rng"
)

// Tensor is a dense row-major matrix of float32 values.
// A Tensor with Cols == 1 doubles as a column vector.
type Tensor struct {
	// RowsN and ColsN are the dimensions. Data has length RowsN*ColsN.
	RowsN, ColsN int
	Data         []float32
}

// New returns a zero-initialized rows x cols tensor.
func New(rows, cols int) *Tensor {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &Tensor{RowsN: rows, ColsN: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps data (not copied) as a rows x cols tensor.
func FromSlice(rows, cols int, data []float32) *Tensor {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice %dx%d needs %d values, got %d", rows, cols, rows*cols, len(data)))
	}
	return &Tensor{RowsN: rows, ColsN: cols, Data: data}
}

// Rows returns the number of rows.
func (t *Tensor) Rows() int { return t.RowsN }

// Cols returns the number of columns.
func (t *Tensor) Cols() int { return t.ColsN }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return t.RowsN * t.ColsN }

// At returns the element at row i, column j.
func (t *Tensor) At(i, j int) float32 { return t.Data[i*t.ColsN+j] }

// Set assigns the element at row i, column j.
func (t *Tensor) Set(i, j int, v float32) { t.Data[i*t.ColsN+j] = v }

// Row returns row i as a slice aliasing the tensor's storage.
func (t *Tensor) Row(i int) []float32 { return t.Data[i*t.ColsN : (i+1)*t.ColsN] }

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.RowsN, t.ColsN)
	copy(c.Data, t.Data)
	return c
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// SameShape reports whether t and o have identical dimensions.
func (t *Tensor) SameShape(o *Tensor) bool {
	return t.RowsN == o.RowsN && t.ColsN == o.ColsN
}

// String renders small tensors fully and large ones as a shape summary.
func (t *Tensor) String() string {
	if t.Len() <= 64 {
		return fmt.Sprintf("Tensor(%dx%d)%v", t.RowsN, t.ColsN, t.Data)
	}
	return fmt.Sprintf("Tensor(%dx%d)", t.RowsN, t.ColsN)
}

// Randn fills t with normal deviates scaled by std.
func (t *Tensor) Randn(r *rng.RNG, std float64) {
	for i := range t.Data {
		t.Data[i] = float32(r.Norm() * std)
	}
}

// XavierInit fills t with the Glorot/Xavier uniform initialization for a
// weight matrix of shape [fanIn, fanOut].
func (t *Tensor) XavierInit(r *rng.RNG) {
	limit := math.Sqrt(6.0 / float64(t.RowsN+t.ColsN))
	for i := range t.Data {
		t.Data[i] = float32((2*r.Float64() - 1) * limit)
	}
}

// --- raw kernels (no autograd) ---

// MatMul computes a @ b into a new tensor. Panics on shape mismatch.
func MatMul(a, b *Tensor) *Tensor {
	if a.ColsN != b.RowsN {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %dx%d @ %dx%d", a.RowsN, a.ColsN, b.RowsN, b.ColsN))
	}
	out := New(a.RowsN, b.ColsN)
	matMulInto(out, a, b, false)
	return out
}

// rowGrain sizes the row blocks the parallel kernels hand to each worker:
// large enough that a shard amortizes goroutine overhead (~64k multiply-
// adds), small enough that big matrices fan out across every core. It is a
// function of the row cost only — never of the worker count — so the shard
// structure, and with it the result, is identical for any parallelism.
func rowGrain(flopsPerRow int) int {
	const target = 1 << 16
	g := target / (flopsPerRow + 1)
	if g < 1 {
		g = 1
	}
	return g
}

// matMulInto computes out (+)= a @ b with an ikj loop order that keeps the
// inner loop contiguous for both b and out. When accum is true the product
// is added to out instead of overwriting it. Row blocks run in parallel;
// each worker owns a disjoint range of output rows and accumulates in the
// same k order as the serial kernel, so the result is bitwise-identical
// for any worker count.
func matMulInto(out, a, b *Tensor, accum bool) {
	n := b.ColsN
	if !accum {
		out.Zero()
	}
	parallel.For(a.RowsN, rowGrain(a.ColsN*n), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			orow := out.Row(i)
			for k := 0; k < a.ColsN; k++ {
				av := arow[k]
				//bettyvet:ok floateq sparsity fast path: skipping an exactly-zero multiplier is value-preserving for finite inputs
				if av == 0 {
					continue
				}
				brow := b.Data[k*n : (k+1)*n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	})
}

// MatMulTA computes aᵀ @ b into a new tensor.
func MatMulTA(a, b *Tensor) *Tensor {
	out := New(a.ColsN, b.ColsN)
	matMulTAInto(out, a, b, false)
	return out
}

// matMulTAInto computes out (+)= aᵀ @ b. Workers own disjoint ranges of
// output rows (= columns of a). Every worker walks k in ascending order,
// exactly like the serial kernel, so each output element accumulates its
// terms in the identical order. With accum the product is added to out —
// the backward pass writes straight into gradient tensors without a
// temporary.
func matMulTAInto(out, a, b *Tensor, accum bool) {
	if a.RowsN != b.RowsN {
		panic(fmt.Sprintf("tensor: MatMulTA shape mismatch %dx%d ᵀ@ %dx%d", a.RowsN, a.ColsN, b.RowsN, b.ColsN))
	}
	n := b.ColsN
	if !accum {
		out.Zero()
	}
	parallel.For(a.ColsN, rowGrain(a.RowsN*n), func(lo, hi int) {
		for k := 0; k < a.RowsN; k++ {
			arow := a.Row(k)
			brow := b.Row(k)
			for i := lo; i < hi; i++ {
				av := arow[i]
				//bettyvet:ok floateq sparsity fast path: skipping an exactly-zero multiplier is value-preserving for finite inputs
				if av == 0 {
					continue
				}
				orow := out.Data[i*n : (i+1)*n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	})
}

// MatMulTB computes a @ bᵀ into a new tensor.
func MatMulTB(a, b *Tensor) *Tensor {
	out := New(a.RowsN, b.RowsN)
	matMulTBInto(out, a, b, false)
	return out
}

// matMulTBInto computes out (+)= a @ bᵀ with workers owning disjoint
// output-row ranges; each dot product is summed in ascending k order for
// every worker count.
func matMulTBInto(out, a, b *Tensor, accum bool) {
	if a.ColsN != b.ColsN {
		panic(fmt.Sprintf("tensor: MatMulTB shape mismatch %dx%d @ᵀ %dx%d", a.RowsN, a.ColsN, b.RowsN, b.ColsN))
	}
	parallel.For(a.RowsN, rowGrain(a.ColsN*b.RowsN), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			orow := out.Row(i)
			for j := 0; j < b.RowsN; j++ {
				brow := b.Row(j)
				var s float32
				for k, av := range arow {
					s += av * brow[k]
				}
				if accum {
					orow[j] += s
				} else {
					orow[j] = s
				}
			}
		}
	})
}

// Transpose returns aᵀ as a new tensor.
func Transpose(a *Tensor) *Tensor {
	out := New(a.ColsN, a.RowsN)
	for i := 0; i < a.RowsN; i++ {
		for j := 0; j < a.ColsN; j++ {
			out.Data[j*a.RowsN+i] = a.Data[i*a.ColsN+j]
		}
	}
	return out
}

// elemGrain is the element count per shard for the parallel elementwise
// kernels: big enough to amortize a goroutine dispatch, small enough that
// activation-sized tensors fan out. Like rowGrain it is a constant of the
// problem, never of the worker count, so shard structure — and results —
// are identical for any parallelism.
const elemGrain = 1 << 15

// elemRowGrain returns a row grain targeting ~elemGrain elements per shard
// for kernels that must shard on whole rows.
func elemRowGrain(cols int) int {
	g := elemGrain / (cols + 1)
	if g < 1 {
		g = 1
	}
	return g
}

// AddInto computes dst += src elementwise. Shards own disjoint element
// ranges, so the parallel result is bitwise-identical to serial.
func AddInto(dst, src *Tensor) {
	if !dst.SameShape(src) {
		panic("tensor: AddInto shape mismatch")
	}
	d, s := dst.Data, src.Data
	parallel.For(len(s), elemGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			d[i] += s[i]
		}
	})
}

// AXPY computes dst += alpha * src elementwise.
func AXPY(dst *Tensor, alpha float32, src *Tensor) {
	if !dst.SameShape(src) {
		panic("tensor: AXPY shape mismatch")
	}
	d, s := dst.Data, src.Data
	parallel.For(len(s), elemGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			d[i] += alpha * s[i]
		}
	})
}
