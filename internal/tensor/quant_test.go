package tensor

import (
	"math"
	"testing"

	"betty/internal/rng"
)

// TestF16RoundTrip walks every one of the 65536 half bit patterns: decoding
// to float32 and re-encoding must reproduce the original bits exactly
// (every half value is exactly representable in single precision, so the
// codec must be the identity on them). NaNs only need to stay NaN.
func TestF16RoundTrip(t *testing.T) {
	for h := 0; h < 1<<16; h++ {
		v := F16Decode(uint16(h))
		back := F16Encode(v)
		exp := h >> 10 & 0x1f
		mant := h & 0x3ff
		if exp == 0x1f && mant != 0 { // NaN payloads may canonicalize
			if back>>10&0x1f != 0x1f || back&0x3ff == 0 {
				t.Fatalf("half %#04x: NaN decoded to %v re-encoded as %#04x (not NaN)", h, v, back)
			}
			continue
		}
		if back != uint16(h) {
			t.Fatalf("half %#04x decoded to %v re-encoded as %#04x", h, v, back)
		}
	}
}

// TestF16ErrorBound checks the documented f16 error bound on random floats
// in the ranges the serve path quantizes (weights and normalized features):
// for normal-range values, |decode(encode(v)) - v| <= |v| * 2^-11.
func TestF16ErrorBound(t *testing.T) {
	r := rng.New(51)
	const relBound = 1.0 / (1 << 11)
	for i := 0; i < 200000; i++ {
		// Log-uniform magnitudes across the serve-relevant range.
		mag := math.Exp((r.Float64()*2 - 1) * 10) // e^-10 .. e^10
		v := float32(mag)
		if r.Intn(2) == 0 {
			v = -v
		}
		got := F16Decode(F16Encode(v))
		err := math.Abs(float64(got) - float64(v))
		// Normal range: relative bound 2^-11. Below 2^-14 the half format
		// goes subnormal and the bound becomes the absolute quantum 2^-25.
		bound := math.Abs(float64(v)) * relBound
		if sub := math.Ldexp(1, -25); bound < sub {
			bound = sub
		}
		if err > bound {
			t.Fatalf("value %v: round-trip %v, error %g exceeds bound %g", v, got, err, bound)
		}
	}
	// Round-to-nearest-even at the midpoint: 1 + 2^-11 is exactly halfway
	// between 1 and 1+2^-10 and must round to the even significand (1.0).
	mid := float32(1) + 1.0/(1<<11)
	if got := F16Decode(F16Encode(mid)); got != 1 {
		t.Fatalf("midpoint %v rounded to %v, want 1 (nearest even)", mid, got)
	}
	three := float32(1) + 3.0/(1<<11) // halfway, odd low bit: rounds up
	//bettyvet:ok floateq rounding claim is exact by construction: the midpoint must round up to exactly 1+2^-9... the next even significand
	if want := float32(1) + 2.0/(1<<10); F16Decode(F16Encode(three)) != want {
		t.Fatalf("midpoint %v rounded to %v, want %v", three, F16Decode(F16Encode(three)), want)
	}
}

// TestInt8RoundTrip checks the documented int8 bound: per row,
// |decode(encode(v)) - v| <= scale/2 with scale = maxabs(row)/127, and
// all-zero rows survive exactly via the zero-scale sentinel.
func TestInt8RoundTrip(t *testing.T) {
	r := rng.New(52)
	const cols = 137
	for trial := 0; trial < 2000; trial++ {
		row := make([]float32, cols)
		var maxAbs float64
		for j := range row {
			row[j] = float32((r.Float64()*2 - 1) * math.Exp((r.Float64()*2-1)*5))
			if a := math.Abs(float64(row[j])); a > maxAbs {
				maxAbs = a
			}
		}
		q := make([]int8, cols)
		scale := Int8EncodeRow(q, row)
		wantScale := maxAbs / 127
		if math.Abs(float64(scale)-wantScale) > wantScale*1e-6 {
			t.Fatalf("scale %v, want maxabs/127 = %v", scale, wantScale)
		}
		dec := make([]float32, cols)
		Int8DecodeRow(dec, q, scale)
		// scale/2 with a one-ulp margin for the f32 scale itself.
		bound := float64(scale)/2 + float64(scale)*1e-6
		for j := range row {
			if err := math.Abs(float64(dec[j]) - float64(row[j])); err > bound {
				t.Fatalf("trial %d col %d: value %v decoded %v, error %g exceeds scale/2 = %g",
					trial, j, row[j], dec[j], err, bound)
			}
		}
	}
	// All-zero row: zero-scale sentinel, exact zeros back.
	zero := make([]float32, cols)
	q := make([]int8, cols)
	if s := Int8EncodeRow(q, zero); s != 0 {
		t.Fatalf("all-zero row got scale %v, want 0", s)
	}
	dec := make([]float32, cols)
	dec[0] = 99 // must be overwritten
	Int8DecodeRow(dec, q, 0)
	for j, v := range dec {
		if v != 0 {
			t.Fatalf("zero-sentinel decode col %d = %v, want 0", j, v)
		}
	}
}

// TestQuantTensorDecode round-trips whole tensors through both formats and
// the pooled scratch path, checking shape plumbing and the byte accounting.
func TestQuantTensorDecode(t *testing.T) {
	r := rng.New(53)
	src := randTensor(r, 57, 33)
	if q := Quantize(src, QuantOff); q != nil {
		t.Fatalf("QuantOff must return nil, got %+v", q)
	}
	for _, mode := range []QuantMode{QuantF16, QuantInt8} {
		q := Quantize(src, mode)
		if q.Rows != src.RowsN || q.Cols != src.ColsN {
			t.Fatalf("%v: shape %dx%d, want %dx%d", mode, q.Rows, q.Cols, src.RowsN, src.ColsN)
		}
		if q.Bytes() >= int64(src.Len())*4 {
			t.Fatalf("%v: quantized bytes %d not smaller than f32 %d", mode, q.Bytes(), src.Len()*4)
		}
		dst := AcquireScratch(src.Len())
		q.DecodeInto(dst)
		for i, v := range src.Data {
			err := math.Abs(float64(dst[i]) - float64(v))
			var bound float64
			if mode == QuantF16 {
				bound = math.Abs(float64(v))/(1<<11) + math.Ldexp(1, -25)
			} else {
				row := i / src.ColsN
				var maxAbs float64
				for _, rv := range src.Row(row) {
					if a := math.Abs(float64(rv)); a > maxAbs {
						maxAbs = a
					}
				}
				bound = maxAbs/254 + maxAbs*1e-6
			}
			if err > bound {
				t.Fatalf("%v elem %d: %v decoded %v, error %g exceeds %g", mode, i, v, dst[i], err, bound)
			}
		}
		ReleaseScratch(dst)
	}
}

// TestParseQuantMode table-tests the BETTY_QUANT parser: valid spellings
// map to their modes, everything else fails loudly.
func TestParseQuantMode(t *testing.T) {
	good := map[string]QuantMode{"": QuantOff, "off": QuantOff, "f16": QuantF16, "int8": QuantInt8}
	for in, want := range good {
		got, err := ParseQuantMode(in)
		if err != nil || got != want {
			t.Fatalf("ParseQuantMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, in := range []string{"0", "on", "fp16", "INT8", "int-8", "half"} {
		if _, err := ParseQuantMode(in); err == nil {
			t.Fatalf("ParseQuantMode(%q) succeeded, want error", in)
		}
	}
}
