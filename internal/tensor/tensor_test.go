package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"betty/internal/parallel"
	"betty/internal/rng"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestNewShapeAndAccess(t *testing.T) {
	m := New(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 || m.Len() != 12 {
		t.Fatalf("bad shape: %dx%d len %d", m.Rows(), m.Cols(), m.Len())
	}
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Fatalf("Set/At mismatch: %v", m.At(1, 2))
	}
	if m.Row(1)[2] != 5 {
		t.Fatalf("Row aliasing broken")
	}
}

func TestFromSliceValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice should panic on length mismatch")
		}
	}()
	FromSlice(2, 2, []float32{1, 2, 3})
}

func TestCloneIsDeep(t *testing.T) {
	a := FromSlice(2, 2, []float32{1, 2, 3, 4})
	b := a.Clone()
	b.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float32{7, 8, 9, 10, 11, 12})
	c := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i, v := range want {
		if math.Float32bits(c.Data[i]) != math.Float32bits(v) {
			t.Fatalf("MatMul[%d] = %v, want %v", i, c.Data[i], v)
		}
	}
}

func TestMatMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MatMul should panic on inner-dim mismatch")
		}
	}()
	MatMul(New(2, 3), New(2, 2))
}

func TestTransposeInvolution(t *testing.T) {
	r := rng.New(1)
	a := New(5, 7)
	a.Randn(r, 1)
	b := Transpose(Transpose(a))
	for i := range a.Data {
		if math.Float32bits(a.Data[i]) != math.Float32bits(b.Data[i]) {
			t.Fatal("transpose twice is not identity")
		}
	}
}

// Property: MatMulTA(a,b) == MatMul(Transpose(a), b) and
// MatMulTB(a,b) == MatMul(a, Transpose(b)).
func TestMatMulTransposedVariants(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 20; trial++ {
		m, k, n := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a := New(k, m) // note: for TA we need a as k x m
		b := New(k, n)
		a.Randn(r, 1)
		b.Randn(r, 1)
		got := MatMulTA(a, b)
		want := MatMul(Transpose(a), b)
		for i := range got.Data {
			if !almostEq(float64(got.Data[i]), float64(want.Data[i]), 1e-5) {
				t.Fatalf("MatMulTA mismatch at %d: %v vs %v", i, got.Data[i], want.Data[i])
			}
		}
		c := New(m, k)
		d := New(n, k)
		c.Randn(r, 1)
		d.Randn(r, 1)
		got2 := MatMulTB(c, d)
		want2 := MatMul(c, Transpose(d))
		for i := range got2.Data {
			if !almostEq(float64(got2.Data[i]), float64(want2.Data[i]), 1e-5) {
				t.Fatalf("MatMulTB mismatch at %d", i)
			}
		}
	}
}

// Property via testing/quick: matmul distributes over addition:
// A(B + C) == AB + AC for random small matrices.
func TestMatMulDistributive(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		m, k, n := 1+r.Intn(5), 1+r.Intn(5), 1+r.Intn(5)
		a, b, c := New(m, k), New(k, n), New(k, n)
		a.Randn(r, 1)
		b.Randn(r, 1)
		c.Randn(r, 1)
		bc := b.Clone()
		AddInto(bc, c)
		left := MatMul(a, bc)
		right := MatMul(a, b)
		AddInto(right, MatMul(a, c))
		for i := range left.Data {
			if !almostEq(float64(left.Data[i]), float64(right.Data[i]), 1e-4) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAXPY(t *testing.T) {
	a := FromSlice(1, 3, []float32{1, 2, 3})
	b := FromSlice(1, 3, []float32{10, 20, 30})
	AXPY(a, 2, b)
	want := []float32{21, 42, 63}
	for i, v := range want {
		if math.Float32bits(a.Data[i]) != math.Float32bits(v) {
			t.Fatalf("AXPY[%d] = %v, want %v", i, a.Data[i], v)
		}
	}
}

func TestXavierInitBounds(t *testing.T) {
	r := rng.New(3)
	w := New(64, 32)
	w.XavierInit(r)
	limit := float32(math.Sqrt(6.0/96.0)) + 1e-6
	for _, v := range w.Data {
		if v < -limit || v > limit {
			t.Fatalf("Xavier value %v outside ±%v", v, limit)
		}
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	r := rng.New(11)
	a := New(10, 5)
	a.Randn(r, 3)
	s := Softmax(a)
	for i := 0; i < s.RowsN; i++ {
		var sum float64
		for _, v := range s.Row(i) {
			if v < 0 {
				t.Fatal("negative probability")
			}
			sum += float64(v)
		}
		if !almostEq(sum, 1, 1e-5) {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
}

func TestArgmax(t *testing.T) {
	a := FromSlice(2, 3, []float32{0, 5, 2, 7, 1, 3})
	got := Argmax(a)
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("Argmax = %v", got)
	}
}

// The parallel matmul kernels must be bitwise-identical to the serial path
// for any worker count: each worker owns disjoint output rows and sums each
// element's terms in the same order as the serial loop.
func TestMatMulParallelDeterminism(t *testing.T) {
	r := rng.New(99)
	// Dimensions chosen so rowGrain yields several shards per kernel.
	a := New(300, 80)
	a.Randn(r, 1)
	b := New(80, 64)
	b.Randn(r, 1)
	ta := New(300, 90) // for MatMulTA: aᵀ(90 out rows) @ b2
	ta.Randn(r, 1)
	b2 := New(300, 64)
	b2.Randn(r, 1)
	tb := New(200, 80) // for MatMulTB: a @ tbᵀ
	tb.Randn(r, 1)

	type kernel struct {
		name string
		run  func() *Tensor
	}
	kernels := []kernel{
		{"MatMul", func() *Tensor { return MatMul(a, b) }},
		{"MatMulTA", func() *Tensor { return MatMulTA(ta, b2) }},
		{"MatMulTB", func() *Tensor { return MatMulTB(a, tb) }},
	}
	for _, k := range kernels {
		defer parallel.SetWorkers(parallel.SetWorkers(1))
		want := k.run()
		for _, w := range []int{2, 4, 8} {
			parallel.SetWorkers(w)
			got := k.run()
			if !got.SameShape(want) {
				t.Fatalf("%s workers=%d: shape %dx%d != %dx%d", k.name, w, got.RowsN, got.ColsN, want.RowsN, want.ColsN)
			}
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("%s workers=%d: element %d is %v, serial %v", k.name, w, i, got.Data[i], want.Data[i])
				}
			}
		}
	}
}
