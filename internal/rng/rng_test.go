package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := New(43)
	same := true
	a2 := New(42)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestIntnBoundsAndPanic(t *testing.T) {
	r := New(1)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestInt31n(t *testing.T) {
	r := New(2)
	for i := 0; i < 1000; i++ {
		v := r.Int31n(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Int31n out of range: %d", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v far from 0.5", mean)
	}
}

func TestFloat32Range(t *testing.T) {
	r := New(4)
	for i := 0; i < 1000; i++ {
		v := r.Float32()
		if v < 0 || v >= 1 {
			t.Fatalf("Float32 out of range: %v", v)
		}
	}
}

func TestNormMoments(t *testing.T) {
	r := New(5)
	const n = 50000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("Norm mean %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("Norm variance %v", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		n := 1 + int(seed%50)
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || int(v) >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(6)
	s := []int32{1, 1, 2, 3, 5, 8, 13}
	sum := int32(0)
	for _, v := range s {
		sum += v
	}
	r.ShuffleInt32(s)
	var sum2 int32
	for _, v := range s {
		sum2 += v
	}
	if sum != sum2 {
		t.Fatal("shuffle changed contents")
	}
}

func TestShuffleFunc(t *testing.T) {
	r := New(7)
	s := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	seen := make([]bool, len(s))
	for _, v := range s {
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("element %d lost in shuffle", i)
		}
	}
}

func TestExpPositiveWithUnitMean(t *testing.T) {
	r := New(8)
	const n = 50000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.Exp()
		if v < 0 {
			t.Fatal("Exp returned negative")
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.03 {
		t.Fatalf("Exp mean %v", mean)
	}
}

func TestParetoBounds(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		v := r.Pareto(2, 2.5)
		if v < 2 {
			t.Fatalf("Pareto below minimum: %v", v)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(10)
	s := r.Split()
	// drawing from the split must not perturb the parent relative to a
	// parent that split but never used the child
	r2 := New(10)
	s2 := r2.Split()
	_ = s2
	for i := 0; i < 10; i++ {
		s.Uint64()
	}
	for i := 0; i < 10; i++ {
		if r.Uint64() != r2.Uint64() {
			t.Fatal("child draws perturbed the parent stream")
		}
	}
}
