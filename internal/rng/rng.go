// Package rng provides a small, fast, deterministic pseudo-random number
// generator used throughout the repository. Every stochastic component
// (samplers, partitioners, dataset generators, weight initialization) draws
// from an explicitly seeded RNG so that tests, examples, and benchmarks are
// reproducible bit-for-bit across runs and platforms.
//
// The generator is splitmix64 (Steele, Lea, Flood: "Fast Splittable
// Pseudorandom Number Generators", OOPSLA 2014). It is not cryptographically
// secure; it is a simulation RNG.
package rng

import "math"

// RNG is a deterministic splitmix64 pseudo-random number generator.
// The zero value is a valid generator seeded with 0; prefer New.
type RNG struct {
	state uint64

	// cached spare normal deviate for Norm (Box-Muller generates pairs)
	haveSpare bool
	spare     float64
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split returns a new generator whose stream is independent of r's
// continued output. It is used to give each component (e.g. each sampling
// layer) its own stream so that adding draws in one place does not perturb
// another.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0x9e3779b97f4a7c15)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling, simplified: the modulo
	// bias for n << 2^64 is negligible for simulation purposes.
	return int(r.Uint64() % uint64(n))
}

// Int31n returns a uniformly distributed int32 in [0, n). It panics if n <= 0.
func (r *RNG) Int31n(n int32) int32 {
	if n <= 0 {
		panic("rng: Int31n with non-positive n")
	}
	return int32(r.Uint64() % uint64(n))
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniformly distributed float32 in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / (1 << 24)
}

// Norm returns a normally distributed float64 with mean 0 and stddev 1,
// generated with the Box-Muller transform.
func (r *RNG) Norm() float64 {
	if r.haveSpare {
		r.haveSpare = false
		return r.spare
	}
	var u, v float64
	for {
		u = r.Float64()
		if u > 0 {
			break
		}
	}
	v = r.Float64()
	mag := math.Sqrt(-2 * math.Log(u))
	r.spare = mag * math.Sin(2*math.Pi*v)
	r.haveSpare = true
	return mag * math.Cos(2*math.Pi*v)
}

// Perm returns a pseudo-random permutation of [0, n) as an []int32.
func (r *RNG) Perm(n int) []int32 {
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	r.ShuffleInt32(p)
	return p
}

// ShuffleInt32 shuffles s in place with a Fisher-Yates shuffle.
func (r *RNG) ShuffleInt32(s []int32) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// Shuffle shuffles n elements using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Exp returns an exponentially distributed float64 with rate 1.
func (r *RNG) Exp() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Pareto returns a draw from a Pareto (power-law) distribution with the
// given minimum value xm and tail exponent alpha. Degree sequences of
// natural graphs are modeled with small alpha (heavy tail).
func (r *RNG) Pareto(xm, alpha float64) float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return xm / math.Pow(u, 1/alpha)
		}
	}
}
