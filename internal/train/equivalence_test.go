package train

import (
	"math"
	"testing"

	"betty/internal/graph"
	"betty/internal/parallel"
	"betty/internal/reg"
	"betty/internal/sample"
)

// microState is one run's accumulated gradients (pre-Step) and post-Step
// parameter values, flattened in Params order.
type microState struct {
	grads   [][]float32
	weights [][]float32
}

// runMicroSplit trains exactly one optimizer step over the given full batch
// split into k Betty micro-batches, on a fresh identically-seeded runner,
// and snapshots the accumulated gradients and stepped weights. This is the
// same slicing and loss-scaling scheme core.Engine uses (scale =
// microOutputs / batchOutputs), reproduced here so the equivalence claim is
// tested against package train alone.
func runMicroSplit(t *testing.T, blocks []*graph.Block, k int) microState {
	t.Helper()
	d := testData(t)
	r := testRunner(t, d, nil)
	last := blocks[len(blocks)-1]
	totalOut := last.NumDst

	groups := [][]int32{nil}
	if k > 1 {
		var err error
		groups, err = reg.BettyBatch{Seed: 9}.PartitionBatch(last, k)
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, sel := range groups {
		micro := blocks
		if sel != nil {
			var err error
			micro, err = graph.SliceBatch(blocks, sel)
			if err != nil {
				t.Fatal(err)
			}
		}
		outs := micro[len(micro)-1].NumDst
		scale := float32(outs) / float32(totalOut)
		if _, err := r.RunMicroBatch(micro, scale); err != nil {
			t.Fatal(err)
		}
	}

	var st microState
	for _, p := range r.Model.Params() {
		g := make([]float32, len(p.Value.Data))
		if p.Grad != nil {
			copy(g, p.Grad.Data)
		}
		st.grads = append(st.grads, g)
	}
	r.Step()
	for _, p := range r.Model.Params() {
		st.weights = append(st.weights, append([]float32(nil), p.Value.Data...))
	}
	return st
}

// maxAbsDiff returns the largest elementwise |a-b| across the flattened
// tensors (and fails on shape mismatch).
func maxAbsDiff(t *testing.T, a, b [][]float32) float64 {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("tensor count %d != %d", len(a), len(b))
	}
	var worst float64
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("tensor %d: len %d != %d", i, len(a[i]), len(b[i]))
		}
		for j := range a[i] {
			if d := math.Abs(float64(a[i][j]) - float64(b[i][j])); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// bitsEqual reports whether two snapshots are bit-for-bit identical.
func bitsEqual(t *testing.T, a, b [][]float32) bool {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("tensor count %d != %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("tensor %d: len %d != %d", i, len(a[i]), len(b[i]))
		}
		for j := range a[i] {
			if math.Float32bits(a[i][j]) != math.Float32bits(b[i][j]) {
				return false
			}
		}
	}
	return true
}

// TestMicroBatchEquivalence is the paper's correctness claim (§3): training
// on K scaled micro-batches of one sampled batch accumulates the same
// gradient — and therefore takes the same optimizer step — as the unsplit
// batch, up to float32 summation error.
func TestMicroBatchEquivalence(t *testing.T) {
	d := testData(t)
	s := sample.New([]int{5, 5}, 1)
	blocks, err := s.Sample(d.Graph, d.TrainIdx[:64])
	if err != nil {
		t.Fatal(err)
	}

	full := runMicroSplit(t, blocks, 1)
	const tol = 1e-5
	for _, k := range []int{2, 4} {
		split := runMicroSplit(t, blocks, k)
		if diff := maxAbsDiff(t, full.grads, split.grads); diff > tol {
			t.Errorf("K=%d: accumulated gradients differ from full batch by %g (tol %g)", k, diff, tol)
		}
		if diff := maxAbsDiff(t, full.weights, split.weights); diff > tol {
			t.Errorf("K=%d: post-step weights differ from full batch by %g (tol %g)", k, diff, tol)
		}
	}
}

// TestMicroBatchBitwiseRepeatable pins the determinism contract: at a fixed
// worker count the K-micro-batch step is bit-for-bit reproducible, and the
// bits do not change with BETTY_WORKERS (deterministic parallel kernels).
func TestMicroBatchBitwiseRepeatable(t *testing.T) {
	d := testData(t)
	s := sample.New([]int{5, 5}, 1)
	blocks, err := s.Sample(d.Graph, d.TrainIdx[:64])
	if err != nil {
		t.Fatal(err)
	}
	defer parallel.SetWorkers(parallel.SetWorkers(1))
	for _, k := range []int{1, 2, 4} {
		parallel.SetWorkers(1)
		ref := runMicroSplit(t, blocks, k)
		again := runMicroSplit(t, blocks, k)
		if !bitsEqual(t, ref.grads, again.grads) || !bitsEqual(t, ref.weights, again.weights) {
			t.Errorf("K=%d: repeated run not bitwise identical at workers=1", k)
		}
		parallel.SetWorkers(8)
		wide := runMicroSplit(t, blocks, k)
		if !bitsEqual(t, ref.grads, wide.grads) {
			t.Errorf("K=%d: gradients change bits between workers=1 and workers=8", k)
		}
		if !bitsEqual(t, ref.weights, wide.weights) {
			t.Errorf("K=%d: weights change bits between workers=1 and workers=8", k)
		}
	}
}

// The micro-batch union covers the full batch exactly: every output index
// appears in exactly one group, so no gradient contribution is lost or
// double-counted (precondition of the equivalence above).
func TestPartitionCoversOutputs(t *testing.T) {
	d := testData(t)
	s := sample.New([]int{5, 5}, 1)
	blocks, err := s.Sample(d.Graph, d.TrainIdx[:64])
	if err != nil {
		t.Fatal(err)
	}
	last := blocks[len(blocks)-1]
	for _, k := range []int{2, 4} {
		groups, err := reg.BettyBatch{Seed: 9}.PartitionBatch(last, k)
		if err != nil {
			t.Fatal(err)
		}
		seen := make([]int, last.NumDst)
		for _, g := range groups {
			for _, idx := range g {
				seen[idx]++
			}
		}
		for idx, n := range seen {
			if n != 1 {
				t.Fatalf("K=%d: output %d appears %d times", k, idx, n)
			}
		}
	}
}
