package train

import (
	"math"
	"testing"

	"betty/internal/graph"
	"betty/internal/nn"
	"betty/internal/parallel"
	"betty/internal/reg"
	"betty/internal/sample"
)

// microState is one run's accumulated gradients (pre-Step) and post-Step
// parameter values, flattened in Params order.
type microState struct {
	grads   [][]float32
	weights [][]float32
}

// runMicroSplit trains exactly one optimizer step over the given full batch
// split into k Betty micro-batches, on a fresh identically-seeded runner,
// and snapshots the accumulated gradients and stepped weights. This is the
// same slicing and loss-scaling scheme core.Engine uses (scale =
// microOutputs / batchOutputs), reproduced here so the equivalence claim is
// tested against package train alone.
func runMicroSplit(t *testing.T, blocks []*graph.Block, k int) microState {
	t.Helper()
	d := testData(t)
	r := testRunner(t, d, nil)
	last := blocks[len(blocks)-1]
	totalOut := last.NumDst

	groups := [][]int32{nil}
	if k > 1 {
		var err error
		groups, err = reg.BettyBatch{Seed: 9}.PartitionBatch(last, k)
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, sel := range groups {
		micro := blocks
		if sel != nil {
			var err error
			micro, err = graph.SliceBatch(blocks, sel)
			if err != nil {
				t.Fatal(err)
			}
		}
		outs := micro[len(micro)-1].NumDst
		scale := float32(outs) / float32(totalOut)
		if _, err := r.RunMicroBatch(micro, scale); err != nil {
			t.Fatal(err)
		}
	}

	var st microState
	for _, p := range r.Model.Params() {
		g := make([]float32, len(p.Value.Data))
		if p.Grad != nil {
			copy(g, p.Grad.Data)
		}
		st.grads = append(st.grads, g)
	}
	r.Step()
	for _, p := range r.Model.Params() {
		st.weights = append(st.weights, append([]float32(nil), p.Value.Data...))
	}
	return st
}

// maxAbsDiff returns the largest elementwise |a-b| across the flattened
// tensors (and fails on shape mismatch).
func maxAbsDiff(t *testing.T, a, b [][]float32) float64 {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("tensor count %d != %d", len(a), len(b))
	}
	var worst float64
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("tensor %d: len %d != %d", i, len(a[i]), len(b[i]))
		}
		for j := range a[i] {
			if d := math.Abs(float64(a[i][j]) - float64(b[i][j])); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// bitsEqual reports whether two snapshots are bit-for-bit identical.
func bitsEqual(t *testing.T, a, b [][]float32) bool {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("tensor count %d != %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("tensor %d: len %d != %d", i, len(a[i]), len(b[i]))
		}
		for j := range a[i] {
			if math.Float32bits(a[i][j]) != math.Float32bits(b[i][j]) {
				return false
			}
		}
	}
	return true
}

// TestMicroBatchEquivalence is the paper's correctness claim (§3): training
// on K scaled micro-batches of one sampled batch accumulates the same
// gradient — and therefore takes the same optimizer step — as the unsplit
// batch, up to float32 summation error.
func TestMicroBatchEquivalence(t *testing.T) {
	d := testData(t)
	s := sample.New([]int{5, 5}, 1)
	blocks, err := s.Sample(d.Graph, d.TrainIdx[:64])
	if err != nil {
		t.Fatal(err)
	}

	full := runMicroSplit(t, blocks, 1)
	const tol = 1e-5
	for _, k := range []int{2, 4} {
		split := runMicroSplit(t, blocks, k)
		if diff := maxAbsDiff(t, full.grads, split.grads); diff > tol {
			t.Errorf("K=%d: accumulated gradients differ from full batch by %g (tol %g)", k, diff, tol)
		}
		if diff := maxAbsDiff(t, full.weights, split.weights); diff > tol {
			t.Errorf("K=%d: post-step weights differ from full batch by %g (tol %g)", k, diff, tol)
		}
	}
}

// TestMicroBatchBitwiseRepeatable pins the determinism contract: at a fixed
// worker count the K-micro-batch step is bit-for-bit reproducible, and the
// bits do not change with BETTY_WORKERS (deterministic parallel kernels).
func TestMicroBatchBitwiseRepeatable(t *testing.T) {
	d := testData(t)
	s := sample.New([]int{5, 5}, 1)
	blocks, err := s.Sample(d.Graph, d.TrainIdx[:64])
	if err != nil {
		t.Fatal(err)
	}
	defer parallel.SetWorkers(parallel.SetWorkers(1))
	for _, k := range []int{1, 2, 4} {
		parallel.SetWorkers(1)
		ref := runMicroSplit(t, blocks, k)
		again := runMicroSplit(t, blocks, k)
		if !bitsEqual(t, ref.grads, again.grads) || !bitsEqual(t, ref.weights, again.weights) {
			t.Errorf("K=%d: repeated run not bitwise identical at workers=1", k)
		}
		parallel.SetWorkers(8)
		wide := runMicroSplit(t, blocks, k)
		if !bitsEqual(t, ref.grads, wide.grads) {
			t.Errorf("K=%d: gradients change bits between workers=1 and workers=8", k)
		}
		if !bitsEqual(t, ref.weights, wide.weights) {
			t.Errorf("K=%d: weights change bits between workers=1 and workers=8", k)
		}
	}
}

// runEpochs trains nEpochs full passes over the given pre-sampled batches
// (each split into 2 Betty micro-batches, one optimizer step per batch) on
// a fresh identically-seeded runner, and returns the final parameter values.
func runEpochs(t *testing.T, batches [][]*graph.Block, nEpochs int) [][]float32 {
	t.Helper()
	d := testData(t)
	r := testRunner(t, d, nil)
	for e := 0; e < nEpochs; e++ {
		for _, blocks := range batches {
			last := blocks[len(blocks)-1]
			groups, err := reg.BettyBatch{Seed: 9}.PartitionBatch(last, 2)
			if err != nil {
				t.Fatal(err)
			}
			for _, sel := range groups {
				micro, err := graph.SliceBatch(blocks, sel)
				if err != nil {
					t.Fatal(err)
				}
				scale := float32(micro[len(micro)-1].NumDst) / float32(last.NumDst)
				if _, err := r.RunMicroBatch(micro, scale); err != nil {
					t.Fatal(err)
				}
			}
			r.Step()
		}
	}
	var weights [][]float32
	for _, p := range r.Model.Params() {
		weights = append(weights, append([]float32(nil), p.Value.Data...))
	}
	return weights
}

// TestFusedTrainingBitwiseEquivalent is the end-to-end contract of the
// fused kernel tier (DESIGN.md §13): a 3-epoch micro-batched training run
// with BETTY_FUSED on produces bit-for-bit the same final weights as the
// unfused primitive-op chains, at any worker count. Fusion is a pure
// execution-plan change, never a numerics change.
func TestFusedTrainingBitwiseEquivalent(t *testing.T) {
	d := testData(t)
	s := sample.New([]int{5, 5}, 1)
	var batches [][]*graph.Block
	for _, lo := range []int{0, 64} {
		blocks, err := s.Sample(d.Graph, d.TrainIdx[lo:lo+64])
		if err != nil {
			t.Fatal(err)
		}
		batches = append(batches, blocks)
	}
	defer parallel.SetWorkers(parallel.SetWorkers(1))
	defer nn.SetFused(nn.SetFused(true))

	nn.SetFused(false)
	parallel.SetWorkers(1)
	ref := runEpochs(t, batches, 3)

	for _, w := range []int{1, 8} {
		parallel.SetWorkers(w)
		nn.SetFused(true)
		fused := runEpochs(t, batches, 3)
		if !bitsEqual(t, ref, fused) {
			t.Errorf("workers=%d: fused 3-epoch weights differ in bits from unfused workers=1 run", w)
		}
		nn.SetFused(false)
		plain := runEpochs(t, batches, 3)
		if !bitsEqual(t, ref, plain) {
			t.Errorf("workers=%d: unfused 3-epoch weights not bitwise reproducible", w)
		}
	}
}

// The micro-batch union covers the full batch exactly: every output index
// appears in exactly one group, so no gradient contribution is lost or
// double-counted (precondition of the equivalence above).
func TestPartitionCoversOutputs(t *testing.T) {
	d := testData(t)
	s := sample.New([]int{5, 5}, 1)
	blocks, err := s.Sample(d.Graph, d.TrainIdx[:64])
	if err != nil {
		t.Fatal(err)
	}
	last := blocks[len(blocks)-1]
	for _, k := range []int{2, 4} {
		groups, err := reg.BettyBatch{Seed: 9}.PartitionBatch(last, k)
		if err != nil {
			t.Fatal(err)
		}
		seen := make([]int, last.NumDst)
		for _, g := range groups {
			for _, idx := range g {
				seen[idx]++
			}
		}
		for idx, n := range seen {
			if n != 1 {
				t.Fatalf("K=%d: output %d appears %d times", k, idx, n)
			}
		}
	}
}
