package train

import (
	"math"
	"testing"

	"betty/internal/sample"
)

// MeasureForward must report the same cost shape RunMicroBatch charges —
// same op count, same activation bytes, same flops — without perturbing
// training state: no gradients, no device charges, bitwise-identical
// numerics for a subsequent micro-batch.
func TestMeasureForwardMatchesRun(t *testing.T) {
	d := testData(t)
	r := testRunner(t, d, nil)
	s := sample.New([]int{5, 5}, 1)
	blocks, err := s.Sample(d.Graph, d.TrainIdx[:64])
	if err != nil {
		t.Fatal(err)
	}
	fc, err := r.MeasureForward(blocks)
	if err != nil {
		t.Fatal(err)
	}
	if fc.Ops <= 0 || fc.ActivationBytes <= 0 || fc.Flops <= 0 {
		t.Fatalf("empty forward cost: %+v", fc)
	}
	for _, p := range r.Model.Params() {
		if p.Grad != nil {
			t.Fatal("measurement accumulated a gradient")
		}
	}

	res, err := r.RunMicroBatch(blocks, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fc.ActivationBytes != res.ActivationBytes {
		t.Fatalf("activation bytes %d, run reported %d", fc.ActivationBytes, res.ActivationBytes)
	}
	if math.Abs(fc.Flops-r.Model.Flops(blocks)) > 0 {
		t.Fatalf("flops %v, model reports %v", fc.Flops, r.Model.Flops(blocks))
	}
}

// Interleaving a measurement between micro-batches must not change the
// training result: the scratch tape draws zeroed pool buffers, so the
// losses and gradients stay bitwise identical.
func TestMeasureForwardDoesNotPerturbTraining(t *testing.T) {
	run := func(measure bool) (float64, []float32) {
		d := testData(t)
		r := testRunner(t, d, nil)
		s := sample.New([]int{5, 5}, 1)
		blocks, err := s.Sample(d.Graph, d.TrainIdx[:64])
		if err != nil {
			t.Fatal(err)
		}
		var loss float64
		for i := 0; i < 3; i++ {
			if measure {
				if _, err := r.MeasureForward(blocks); err != nil {
					t.Fatal(err)
				}
			}
			res, err := r.RunMicroBatch(blocks, 1)
			if err != nil {
				t.Fatal(err)
			}
			loss = res.Loss
			r.Step()
		}
		var params []float32
		for _, p := range r.Model.Params() {
			params = append(params, p.Value.Data...)
		}
		return loss, params
	}
	lossPlain, paramsPlain := run(false)
	lossMeasured, paramsMeasured := run(true)
	if math.Float64bits(lossPlain) != math.Float64bits(lossMeasured) {
		t.Fatalf("loss changed: %v vs %v", lossPlain, lossMeasured)
	}
	for i := range paramsPlain {
		if math.Float32bits(paramsPlain[i]) != math.Float32bits(paramsMeasured[i]) {
			t.Fatalf("param %d changed: %v vs %v", i, paramsPlain[i], paramsMeasured[i])
		}
	}
}

func TestMeasureForwardEmptyBatch(t *testing.T) {
	d := testData(t)
	r := testRunner(t, d, nil)
	if _, err := r.MeasureForward(nil); err == nil {
		t.Fatal("empty batch accepted")
	}
}
