package train

import (
	"math"
	"testing"

	"betty/internal/device"
	"betty/internal/embcache"
	"betty/internal/obs"
	"betty/internal/sample"
)

// The runner-level cache tests drive RunMicroBatch/Step directly with one
// fixed sampled batch, the controlled analogue of the engine's
// sample-once-partition-run-step loop: within a step every micro-batch
// shares the parent batch (rows bitwise stable), and across steps the
// version bump is what separates legitimate weight drift from corruption.

func newTrainCache(t *testing.T, mode embcache.Mode, maxLag int, reg *obs.Registry) *embcache.Cache {
	t.Helper()
	c, err := embcache.New(embcache.Config{
		Mode: mode, BudgetBytes: 8 * device.MiB, MaxLag: maxLag, Obs: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// Exact mode: re-running the same micro-batch before the optimizer step
// verifies every cached row bitwise (gradient-accumulation shape), and the
// whole run's losses and parameters are bitwise the uncached run's.
func TestExactCacheTrainingBitwise(t *testing.T) {
	d := testData(t)
	s := sample.New([]int{5, 5}, 1)
	blocks, err := s.Sample(d.Graph, d.TrainIdx[:96])
	if err != nil {
		t.Fatal(err)
	}

	run := func(c *embcache.Cache) ([]uint64, []uint32) {
		r := testRunner(t, d, nil)
		r.Emb = c
		var losses []uint64
		for step := 0; step < 4; step++ {
			// Two forwards per step: the second verifies the first's rows
			// at the same version (exact mode's self-check).
			for micro := 0; micro < 2; micro++ {
				res, err := r.RunMicroBatch(blocks, 0.5)
				if err != nil {
					t.Fatal(err)
				}
				losses = append(losses, math.Float64bits(res.Loss))
			}
			r.Step()
		}
		var params []uint32
		for _, p := range r.Model.Params() {
			for _, v := range p.Value.Data {
				params = append(params, math.Float32bits(v))
			}
		}
		return losses, params
	}

	baseLosses, baseParams := run(nil)
	reg := obs.New(nil)
	c := newTrainCache(t, embcache.ModeExact, 0, reg)
	cachedLosses, cachedParams := run(c)

	for i := range baseLosses {
		if baseLosses[i] != cachedLosses[i] {
			t.Fatalf("micro-batch %d loss differs with exact cache", i)
		}
	}
	for i := range baseParams {
		if baseParams[i] != cachedParams[i] {
			t.Fatalf("trained parameter %d differs with exact cache", i)
		}
	}
	if reg.CounterValue("embcache.verify_failures") != 0 {
		t.Fatal("exact-mode verify failed during training")
	}
	if c.Version() != 4 {
		t.Fatalf("version = %d after 4 steps, want 4", c.Version())
	}
}

// Reuse mode: hits never exceed the configured version lag, stale rows are
// recomputed, and training still converges with the final loss close to
// the exact run's.
func TestReuseCacheStalenessBoundedTraining(t *testing.T) {
	d := testData(t)
	s := sample.New([]int{5, 5}, 1)
	blocks, err := s.Sample(d.Graph, d.TrainIdx[:96])
	if err != nil {
		t.Fatal(err)
	}
	const steps = 12

	run := func(c *embcache.Cache) []float64 {
		r := testRunner(t, d, nil)
		r.Emb = c
		losses := make([]float64, 0, steps)
		for step := 0; step < steps; step++ {
			res, err := r.RunMicroBatch(blocks, 1)
			if err != nil {
				t.Fatal(err)
			}
			losses = append(losses, res.Loss)
			r.Step()
		}
		return losses
	}

	exactLosses := run(nil)
	const maxLag = 1
	reg := obs.New(nil)
	c := newTrainCache(t, embcache.ModeReuse, maxLag, reg)
	reuseLosses := run(c)

	// The staleness bound: no reuse hit ever carried a version lag beyond
	// the budget, and entries beyond it were dropped and recomputed.
	if got := c.MaxObservedLag(); got > maxLag {
		t.Fatalf("observed lag %d exceeds the %d bound", got, maxLag)
	}
	hits, _ := c.Stats()
	if hits == 0 {
		t.Fatal("re-running the same batch produced no reuse hits")
	}
	if reg.CounterValue("embcache.stale_drops") == 0 {
		t.Fatalf("%d steps at lag budget %d never dropped a stale row", steps, maxLag)
	}

	// The approximation stays bounded: training still converges, and the
	// final loss lands near the exact run's.
	if reuseLosses[steps-1] >= reuseLosses[0] {
		t.Fatalf("reuse-mode loss did not decrease: %v -> %v", reuseLosses[0], reuseLosses[steps-1])
	}
	// Bound the approximation, not just the trend: reuse must recover at
	// least half of the loss reduction the exact run achieved over the
	// same steps (historical embeddings slow layer-1 learning — hit rows
	// carry no gradient — but must not stall it).
	exactDrop := exactLosses[0] - exactLosses[steps-1]
	reuseDrop := reuseLosses[0] - reuseLosses[steps-1]
	if reuseDrop < 0.5*exactDrop {
		t.Fatalf("reuse recovered %v of the exact run's %v loss reduction (< 50%%)", reuseDrop, exactDrop)
	}
}
