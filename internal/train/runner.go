// Package train executes GNN training steps against the simulated device:
// it gathers batch inputs, charges the device ledger (reproducing OOM
// boundaries), advances the transfer/compute clocks, and runs the real
// forward/backward pass on the autograd tape. Epoch-level strategies
// (full-batch, Betty micro-batch, mini-batch) are composed on top of it by
// package core.
package train

import (
	"fmt"

	"betty/internal/dataset"
	"betty/internal/device"
	"betty/internal/embcache"
	"betty/internal/graph"
	"betty/internal/nn"
	"betty/internal/obs"
	"betty/internal/parallel"
	"betty/internal/tensor"
)

// Model abstracts the trainable GNNs (GraphSAGE, GAT).
type Model interface {
	nn.Module
	// Forward maps an input-first block list and input features to logits
	// for the last block's destinations.
	Forward(tp *tensor.Tape, blocks []*graph.Block, x *tensor.Var) *tensor.Var
	// Flops estimates forward+backward floating point operations.
	Flops(blocks []*graph.Block) float64
	// Config returns the architecture description.
	Config() nn.Config
}

// StepResult reports one executed (micro-)batch.
type StepResult struct {
	// Loss is the unscaled mean cross-entropy over the batch's outputs.
	Loss float64
	// Correct and Count give training accuracy over the batch's outputs.
	Correct, Count int
	// TransferSeconds and ComputeSeconds are the simulated device times
	// charged for this batch.
	TransferSeconds, ComputeSeconds float64
	// ActivationBytes is the tape's materialized intermediate memory.
	ActivationBytes int64
	// PeakBytes is the device peak observed during this batch (0 when no
	// device is attached).
	PeakBytes int64
}

// Runner executes batches for one model/dataset pair.
type Runner struct {
	Model Model
	Data  *dataset.Dataset
	Opt   nn.Optimizer

	// Dev, when non-nil, enforces the memory capacity and accumulates
	// simulated time. Training without a device skips all accounting.
	Dev *device.Device

	// Obs, when non-nil, receives per-phase spans (h2d, forward, backward,
	// step, eval) and per-micro-batch metrics. A nil registry costs one
	// pointer test per instrumentation point (see BenchmarkMicroBatchObs).
	Obs *obs.Registry

	// Emb, when active, is the historical-embedding cache (DESIGN.md §16):
	// micro-batch forwards route through embcache.Forward, and every
	// optimizer Step bumps the cache's weight version. Evaluation and
	// MeasureForward never consult it.
	Emb *embcache.Cache

	resident []*device.Buffer

	// tape is reused across micro-batches: Release rewinds it, so every
	// step after the first records its graph into recycled headers and
	// pooled buffers. Training steps are serial; Evaluate's parallel
	// chunks use their own tapes.
	tape *tensor.Tape
	// params caches Model.Params() so the per-step ZeroGrad stops
	// rebuilding the slice.
	params []*tensor.Var
}

// NewRunner wires a model, dataset, and optimizer; dev may be nil.
func NewRunner(m Model, d *dataset.Dataset, opt nn.Optimizer, dev *device.Device) *Runner {
	return &Runner{Model: m, Data: d, Opt: opt, Dev: dev}
}

// EnsureResident allocates the persistent device buffers: parameters,
// gradients, and optimizer states live across batches.
func (r *Runner) EnsureResident() error {
	if r.Dev == nil || r.resident != nil {
		return nil
	}
	params := int64(nn.ParamCount(r.Model))
	allocs := []struct {
		bytes int64
		label string
	}{
		{params * 4, "parameters"},
		{params * 4, "gradients"},
		{params * int64(r.Opt.StateSize()) * 4, "optimizer-states"},
	}
	for _, a := range allocs {
		if a.bytes == 0 {
			continue
		}
		buf, err := r.Dev.Alloc(a.bytes, a.label)
		if err != nil {
			return fmt.Errorf("train: resident state: %w", err)
		}
		r.resident = append(r.resident, buf)
	}
	return nil
}

// DetachResident hands ownership of the current resident buffers (the
// model-state replica on the current device) to the caller and clears the
// runner's record, so a subsequent EnsureResident allocates on whatever
// device is then attached. Multi-device training uses Detach/Attach to
// keep one persistent replica per device across epochs.
func (r *Runner) DetachResident() []*device.Buffer {
	bufs := r.resident
	r.resident = nil
	return bufs
}

// AttachResident installs a previously detached resident set (which must
// belong to the currently attached device). A nil set means the next batch
// allocates a fresh replica.
func (r *Runner) AttachResident(bufs []*device.Buffer) { r.resident = bufs }

// ReleaseResident frees the persistent buffers (end of training).
func (r *Runner) ReleaseResident() {
	if r.Dev == nil {
		return
	}
	for _, b := range r.resident {
		r.Dev.Free(b)
	}
	r.resident = nil
}

// RunMicroBatch runs forward+backward on blocks, scaling the loss by scale
// before backpropagation so that accumulated micro-batch gradients equal
// the full-batch gradient (scale = microOutputs/batchOutputs). Gradients
// accumulate in the model; call Step to apply them.
//
// With a device attached, the batch's transient tensors are charged to the
// ledger first; an OOM error aborts the batch before any compute.
func (r *Runner) RunMicroBatch(blocks []*graph.Block, scale float32) (StepResult, error) {
	var res StepResult
	if len(blocks) == 0 {
		return res, fmt.Errorf("train: empty batch")
	}
	input := blocks[0]
	last := blocks[len(blocks)-1]
	if r.tape == nil {
		r.tape = tensor.NewTape()
	}
	tp := r.tape
	defer tp.Release()
	// Stage the feature fetch in the tape's pooled arena: the big per-batch
	// input copy recycles the same buffer across micro-batches. An
	// out-of-core source pulls the frontier's shards through its cache
	// here; a load failure aborts the batch before any compute.
	x := tp.Alloc(len(input.SrcNID), r.Data.FeatureDim())
	if err := r.Data.GatherFeaturesInto(x, input.SrcNID); err != nil {
		return res, fmt.Errorf("train: feature gather: %w", err)
	}
	labels := r.Data.GatherLabels(last.DstNID)

	// Device phase 1: transfer inputs and charge their memory.
	var transient []*device.Buffer
	charge := func(bytes int64, label string, transfer bool) error {
		if r.Dev == nil || bytes == 0 {
			return nil
		}
		buf, err := r.Dev.Alloc(bytes, label)
		if err != nil {
			return err
		}
		transient = append(transient, buf)
		if transfer {
			res.TransferSeconds += r.Dev.Transfer(bytes)
		}
		return nil
	}
	free := func() {
		for _, b := range transient {
			r.Dev.Free(b)
		}
		transient = nil
	}
	if err := r.EnsureResident(); err != nil {
		return res, err
	}
	if r.Dev != nil {
		stats := graph.Stats(blocks)
		hsp := r.Obs.StartSpan(obs.PhaseH2D).
			SetInt("input_nodes", int64(stats.NumInput)).
			SetInt("edges", int64(stats.TotalEdges))
		oom := func(err error) (StepResult, error) {
			hsp.End()
			r.Obs.Add("train.oom", 1)
			free()
			return res, err
		}
		if err := charge(int64(x.Len())*4, "input-features", true); err != nil {
			return oom(err)
		}
		if err := charge(int64(len(labels))*4, "labels", true); err != nil {
			return oom(err)
		}
		if err := charge(int64(stats.TotalEdges)*3*4, "blocks", true); err != nil {
			return oom(err)
		}
		hsp.End()
	}

	// Forward + loss on the tape. Every intermediate tensor comes from the
	// buffer pool, and the deferred Release rewinds the tape once the
	// batch's results have been extracted — on success and on the OOM error
	// path — so the next micro-batch reuses the same arena. Only leaf and
	// parameter storage (including the accumulated gradients) outlives it.
	fsp := r.Obs.StartSpan(obs.PhaseForward).
		SetInt("input_nodes", int64(input.NumSrc)).
		SetInt("outputs", int64(last.NumDst))
	logits, err := r.forward(tp, blocks, tensor.Leaf(x))
	if err != nil {
		fsp.End()
		free()
		return res, err
	}
	loss := tp.SoftmaxCrossEntropy(logits, labels)
	fsp.End()
	res.Loss = float64(loss.Value.Data[0])
	pred := tensor.Argmax(logits.Value)
	for i, p := range pred {
		if labels[i] >= 0 {
			res.Count++
			if p == labels[i] {
				res.Correct++
			}
		}
	}
	res.ActivationBytes = tp.ValueBytes()

	// Device phase 2: charge activations and compute time, then backward.
	if err := charge(res.ActivationBytes, "activations", false); err != nil {
		r.Obs.Add("train.oom", 1)
		free()
		return res, fmt.Errorf("train: forward activations: %w", err)
	}
	if r.Dev != nil {
		// forward + backward issue roughly three kernels per recorded op
		res.ComputeSeconds += r.Dev.ComputeKernels(r.Model.Flops(blocks), 3*tp.NumOps())
		res.PeakBytes = r.Dev.Peak()
	}
	bsp := r.Obs.StartSpan(obs.PhaseBackward).SetInt("outputs", int64(last.NumDst))
	//bettyvet:ok floateq identity-scale fast path: scale is exactly 1 when no loss rescaling was requested
	if scale != 1 {
		loss = tp.Scale(loss, scale)
	}
	tp.Backward(loss)
	bsp.End()
	free()
	r.Obs.Add("train.micro_batches", 1)
	r.Obs.Observe("micro.activation_bytes", res.ActivationBytes)
	if res.PeakBytes > 0 {
		r.Obs.Observe("micro.peak_bytes", res.PeakBytes)
	}
	return res, nil
}

// forward routes a micro-batch forward through the historical-embedding
// cache when one is active; otherwise it is exactly Model.Forward. In
// exact mode the cached path is op-for-op identical to the plain one
// (verified bitwise row by row), so loss and gradients never change; in
// reuse mode hit rows enter as constants and only misses are computed.
func (r *Runner) forward(tp *tensor.Tape, blocks []*graph.Block, x *tensor.Var) (*tensor.Var, error) {
	if !r.Emb.Active() {
		return r.Model.Forward(tp, blocks, x), nil
	}
	return embcache.Forward(tp, r.Model, blocks, x, r.Emb)
}

// ForwardCost reports the measured cost of a gradient-free forward pass:
// the recorded tape operation count, the materialized activation bytes, and
// the model's FLOP estimate for the blocks. Multi-device training uses it
// to charge each simulated device for its shard of a micro-batch without
// perturbing the canonical gradient accumulation.
type ForwardCost struct {
	// Ops is the number of operations the forward pass recorded.
	Ops int
	// ActivationBytes is the tape's materialized intermediate memory.
	ActivationBytes int64
	// Flops is the model's forward+backward FLOP estimate for the blocks.
	Flops float64
}

// MeasureForward runs forward + loss on a scratch tape and returns the
// measured cost. It never touches the device ledger, the runner's
// persistent tape, or any parameter gradient (backward is never invoked),
// so interleaving it with RunMicroBatch leaves training numerics bitwise
// unchanged — the scratch tape draws zeroed buffers from the shared pool.
func (r *Runner) MeasureForward(blocks []*graph.Block) (ForwardCost, error) {
	var fc ForwardCost
	if len(blocks) == 0 {
		return fc, fmt.Errorf("train: empty batch")
	}
	input := blocks[0]
	last := blocks[len(blocks)-1]
	tp := tensor.NewTape()
	defer tp.Release()
	x := tp.Alloc(len(input.SrcNID), r.Data.FeatureDim())
	if err := r.Data.GatherFeaturesInto(x, input.SrcNID); err != nil {
		return fc, fmt.Errorf("train: feature gather: %w", err)
	}
	labels := r.Data.GatherLabels(last.DstNID)
	logits := r.Model.Forward(tp, blocks, tensor.Leaf(x))
	tp.SoftmaxCrossEntropy(logits, labels)
	fc.Ops = tp.NumOps()
	fc.ActivationBytes = tp.ValueBytes()
	fc.Flops = r.Model.Flops(blocks)
	return fc, nil
}

// Step applies the optimizer to the accumulated gradients and clears them.
func (r *Runner) Step() {
	sp := r.Obs.StartSpan(obs.PhaseStep)
	r.Opt.Step()
	if r.params == nil {
		r.params = r.Model.Params()
	}
	for _, p := range r.params {
		p.ZeroGrad()
	}
	sp.End()
	// The weights just changed: advance the embedding-cache version so
	// rows computed before this step age by one (and exact mode never
	// verifies against rows from older weights).
	r.Emb.BumpVersion()
	r.Obs.Add("train.steps", 1)
}

// sampler is the subset of sample.Sampler the evaluator needs; declared
// here to avoid a dependency cycle in tests that fake it. Sample must be
// safe for concurrent calls (the evaluator runs chunks in parallel).
type sampler interface {
	Sample(g *graph.Graph, seeds []int32) ([]*graph.Block, error)
}

// Evaluate computes accuracy over seeds, processing them in chunks of
// chunkSize with the given sampler (no device accounting, no gradients).
// Chunks run in parallel: the sampler derives each chunk's random stream
// from the chunk's own seeds, so the result is identical for any worker
// count and to a serial evaluation. Masked seeds (label < 0) are excluded
// from both numerator and denominator, matching RunMicroBatch; it is an
// error only when no labeled seed was seen at all.
func (r *Runner) Evaluate(s sampler, seeds []int32, chunkSize int) (float64, error) {
	if chunkSize <= 0 {
		chunkSize = 1024
	}
	type chunkResult struct {
		correct, count int
		err            error
	}
	nChunks := (len(seeds) + chunkSize - 1) / chunkSize
	sp := r.Obs.StartSpan(obs.PhaseEval).
		SetInt("seeds", int64(len(seeds))).
		SetInt("chunks", int64(nChunks))
	defer sp.End()
	results := make([]chunkResult, nChunks)
	parallel.For(nChunks, 1, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			clo := c * chunkSize
			chi := clo + chunkSize
			if chi > len(seeds) {
				chi = len(seeds)
			}
			blocks, err := s.Sample(r.Data.Graph, seeds[clo:chi])
			if err != nil {
				results[c].err = err
				continue
			}
			x, err := r.Data.GatherFeatures(blocks[0].SrcNID)
			if err != nil {
				results[c].err = err
				continue
			}
			labels := r.Data.GatherLabels(blocks[len(blocks)-1].DstNID)
			tp := tensor.NewTape()
			logits := r.Model.Forward(tp, blocks, tensor.Leaf(x))
			pred := tensor.Argmax(logits.Value)
			for i, p := range pred {
				if labels[i] < 0 {
					continue
				}
				results[c].count++
				if p == labels[i] {
					results[c].correct++
				}
			}
			tp.Release() // predictions extracted; recycle the chunk's arena
		}
	})
	correct, count := 0, 0
	for _, cr := range results {
		if cr.err != nil {
			return 0, cr.err
		}
		correct += cr.correct
		count += cr.count
	}
	if count == 0 {
		return 0, fmt.Errorf("train: no labeled evaluation nodes")
	}
	return float64(correct) / float64(count), nil
}
