package train

import (
	"testing"

	"betty/internal/dataset"
	"betty/internal/graph"
	"betty/internal/nn"
	"betty/internal/obs"
	"betty/internal/rng"
	"betty/internal/sample"
)

// benchWorkload builds a fixed micro-batch step for the obs-overhead
// benchmark (mirrors testRunner/testData, which need a *testing.T).
func benchWorkload(b *testing.B) (*Runner, []*graph.Block) {
	b.Helper()
	d, err := dataset.Generate(dataset.GenConfig{
		Name: "t", Nodes: 600, AvgDegree: 8, FeatureDim: 16,
		NumClasses: 4, Homophily: 0.8, Seed: 42,
	})
	if err != nil {
		b.Fatal(err)
	}
	model, err := nn.NewGraphSAGE(nn.Config{
		InDim: d.FeatureDim(), Hidden: 16, OutDim: d.NumClasses,
		Layers: 2, Aggregator: nn.Mean,
	}, rng.New(7))
	if err != nil {
		b.Fatal(err)
	}
	r := NewRunner(model, d, nn.NewAdam(model, 0.01), nil)
	blocks, err := sample.New([]int{5, 5}, 1).Sample(d.Graph, d.TrainIdx[:64])
	if err != nil {
		b.Fatal(err)
	}
	return r, blocks
}

// BenchmarkMicroBatchObs quantifies the instrumentation cost of one
// RunMicroBatch+Step across the three observability states. The acceptance
// bar for this PR is "disabled" (nil registry) within 2% of the
// uninstrumented step time — a nil registry costs one pointer test per
// site, so the three sub-benchmark times should be indistinguishable from
// each other up to measurement noise.
func BenchmarkMicroBatchObs(b *testing.B) {
	for _, cfg := range []struct {
		name  string
		reg   func() *obs.Registry
		trace bool
	}{
		{name: "disabled", reg: func() *obs.Registry { return nil }},
		{name: "metrics", reg: func() *obs.Registry { return obs.New(obs.RealClock()) }},
		{name: "trace", reg: func() *obs.Registry { return obs.New(obs.RealClock()) }, trace: true},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			r, blocks := benchWorkload(b)
			r.Obs = cfg.reg()
			r.Obs.SetTracing(cfg.trace)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := r.RunMicroBatch(blocks, 1); err != nil {
					b.Fatal(err)
				}
				r.Step()
			}
		})
	}
}
