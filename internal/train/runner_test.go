package train

import (
	"errors"
	"testing"

	"betty/internal/dataset"
	"betty/internal/device"
	"betty/internal/nn"
	"betty/internal/rng"
	"betty/internal/sample"
)

func testData(t *testing.T) *dataset.Dataset {
	t.Helper()
	d, err := dataset.Generate(dataset.GenConfig{
		Name: "t", Nodes: 600, AvgDegree: 8, FeatureDim: 16,
		NumClasses: 4, Homophily: 0.8, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func testRunner(t *testing.T, d *dataset.Dataset, dev *device.Device) *Runner {
	t.Helper()
	model, err := nn.NewGraphSAGE(nn.Config{
		InDim: d.FeatureDim(), Hidden: 16, OutDim: d.NumClasses,
		Layers: 2, Aggregator: nn.Mean,
	}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	return NewRunner(model, d, nn.NewAdam(model, 0.01), dev)
}

func TestRunMicroBatchNoDevice(t *testing.T) {
	d := testData(t)
	r := testRunner(t, d, nil)
	s := sample.New([]int{5, 5}, 1)
	blocks, err := s.Sample(d.Graph, d.TrainIdx[:64])
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.RunMicroBatch(blocks, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Loss <= 0 {
		t.Fatalf("loss = %v", res.Loss)
	}
	if res.Count != 64 {
		t.Fatalf("count = %d", res.Count)
	}
	if res.ActivationBytes <= 0 {
		t.Fatal("no activation bytes recorded")
	}
	if res.PeakBytes != 0 || res.TransferSeconds != 0 {
		t.Fatal("device metrics nonzero without a device")
	}
	// gradients accumulated
	grads := 0
	for _, p := range r.Model.Params() {
		if p.Grad != nil {
			grads++
		}
	}
	if grads == 0 {
		t.Fatal("no gradients accumulated")
	}
}

func TestRunMicroBatchWithDevice(t *testing.T) {
	d := testData(t)
	dev := device.New(device.GiB, device.DefaultCostModel())
	r := testRunner(t, d, dev)
	s := sample.New([]int{5, 5}, 1)
	blocks, err := s.Sample(d.Graph, d.TrainIdx[:64])
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.RunMicroBatch(blocks, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakBytes <= 0 {
		t.Fatal("device peak not recorded")
	}
	if res.TransferSeconds <= 0 || res.ComputeSeconds <= 0 {
		t.Fatal("simulated time not recorded")
	}
	// transient buffers freed; resident (params+grads+opt) remain
	params := int64(nn.ParamCount(r.Model))
	wantResident := params*4 + params*4 + params*2*4
	if dev.Used() < wantResident || dev.Used() > wantResident+10*device.AllocGranularity {
		t.Fatalf("used after batch = %d, want about %d (resident only)", dev.Used(), wantResident)
	}
	r.ReleaseResident()
	if dev.Used() != 0 {
		t.Fatalf("used after release = %d", dev.Used())
	}
}

func TestRunMicroBatchOOM(t *testing.T) {
	d := testData(t)
	dev := device.New(64*device.KiB, device.DefaultCostModel())
	r := testRunner(t, d, dev)
	s := sample.New([]int{5, 5}, 1)
	blocks, err := s.Sample(d.Graph, d.TrainIdx[:128])
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.RunMicroBatch(blocks, 1)
	if !errors.Is(err, device.ErrOOM) {
		t.Fatalf("want OOM, got %v", err)
	}
	// transient buffers must have been freed on the error path
	live := dev.LiveBuffers()
	for _, b := range live {
		switch b.Label() {
		case "parameters", "gradients", "optimizer-states":
		default:
			t.Fatalf("leaked transient buffer %q", b.Label())
		}
	}
}

func TestStepAppliesAndClears(t *testing.T) {
	d := testData(t)
	r := testRunner(t, d, nil)
	s := sample.New([]int{5, 5}, 1)
	blocks, _ := s.Sample(d.Graph, d.TrainIdx[:64])
	if _, err := r.RunMicroBatch(blocks, 1); err != nil {
		t.Fatal(err)
	}
	before := r.Model.Params()[0].Value.Clone()
	r.Step()
	after := r.Model.Params()[0].Value
	changed := false
	for i := range before.Data {
		if before.Data[i] != after.Data[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("optimizer step did not change parameters")
	}
	for _, p := range r.Model.Params() {
		if p.Grad == nil {
			continue
		}
		for _, g := range p.Grad.Data {
			if g != 0 {
				t.Fatal("gradients not cleared after Step")
			}
		}
	}
}

func TestEvaluate(t *testing.T) {
	d := testData(t)
	r := testRunner(t, d, nil)
	s := sample.New([]int{5, 5}, 3)
	acc, err := r.Evaluate(s, d.TestIdx, 50)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy %v out of range", acc)
	}
	if _, err := r.Evaluate(s, nil, 10); err == nil {
		t.Fatal("empty evaluation accepted")
	}
}

func TestEmptyBatchRejected(t *testing.T) {
	d := testData(t)
	r := testRunner(t, d, nil)
	if _, err := r.RunMicroBatch(nil, 1); err == nil {
		t.Fatal("empty batch accepted")
	}
}

// Training for a few steps must reduce the loss on a learnable dataset.
func TestLossDecreases(t *testing.T) {
	d := testData(t)
	r := testRunner(t, d, nil)
	s := sample.New([]int{8, 8}, 5)
	var first, last float64
	for epoch := 0; epoch < 15; epoch++ {
		blocks, err := s.Sample(d.Graph, d.TrainIdx[:128])
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.RunMicroBatch(blocks, 1)
		if err != nil {
			t.Fatal(err)
		}
		r.Step()
		if epoch == 0 {
			first = res.Loss
		}
		last = res.Loss
	}
	if last >= first {
		t.Fatalf("loss did not decrease: %v -> %v", first, last)
	}
}
