package train

import (
	"errors"
	"math"
	"testing"

	"betty/internal/dataset"
	"betty/internal/device"
	"betty/internal/graph"
	"betty/internal/nn"
	"betty/internal/parallel"
	"betty/internal/rng"
	"betty/internal/sample"
	"betty/internal/tensor"
)

func testData(t *testing.T) *dataset.Dataset {
	t.Helper()
	d, err := dataset.Generate(dataset.GenConfig{
		Name: "t", Nodes: 600, AvgDegree: 8, FeatureDim: 16,
		NumClasses: 4, Homophily: 0.8, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func testRunner(t *testing.T, d *dataset.Dataset, dev *device.Device) *Runner {
	t.Helper()
	model, err := nn.NewGraphSAGE(nn.Config{
		InDim: d.FeatureDim(), Hidden: 16, OutDim: d.NumClasses,
		Layers: 2, Aggregator: nn.Mean,
	}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	return NewRunner(model, d, nn.NewAdam(model, 0.01), dev)
}

func TestRunMicroBatchNoDevice(t *testing.T) {
	d := testData(t)
	r := testRunner(t, d, nil)
	s := sample.New([]int{5, 5}, 1)
	blocks, err := s.Sample(d.Graph, d.TrainIdx[:64])
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.RunMicroBatch(blocks, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Loss <= 0 {
		t.Fatalf("loss = %v", res.Loss)
	}
	if res.Count != 64 {
		t.Fatalf("count = %d", res.Count)
	}
	if res.ActivationBytes <= 0 {
		t.Fatal("no activation bytes recorded")
	}
	if res.PeakBytes != 0 || res.TransferSeconds != 0 {
		t.Fatal("device metrics nonzero without a device")
	}
	// gradients accumulated
	grads := 0
	for _, p := range r.Model.Params() {
		if p.Grad != nil {
			grads++
		}
	}
	if grads == 0 {
		t.Fatal("no gradients accumulated")
	}
}

func TestRunMicroBatchWithDevice(t *testing.T) {
	d := testData(t)
	dev := device.New(device.GiB, device.DefaultCostModel())
	r := testRunner(t, d, dev)
	s := sample.New([]int{5, 5}, 1)
	blocks, err := s.Sample(d.Graph, d.TrainIdx[:64])
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.RunMicroBatch(blocks, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakBytes <= 0 {
		t.Fatal("device peak not recorded")
	}
	if res.TransferSeconds <= 0 || res.ComputeSeconds <= 0 {
		t.Fatal("simulated time not recorded")
	}
	// transient buffers freed; resident (params+grads+opt) remain
	params := int64(nn.ParamCount(r.Model))
	wantResident := params*4 + params*4 + params*2*4
	if dev.Used() < wantResident || dev.Used() > wantResident+10*device.AllocGranularity {
		t.Fatalf("used after batch = %d, want about %d (resident only)", dev.Used(), wantResident)
	}
	r.ReleaseResident()
	if dev.Used() != 0 {
		t.Fatalf("used after release = %d", dev.Used())
	}
}

func TestRunMicroBatchOOM(t *testing.T) {
	d := testData(t)
	dev := device.New(64*device.KiB, device.DefaultCostModel())
	r := testRunner(t, d, dev)
	s := sample.New([]int{5, 5}, 1)
	blocks, err := s.Sample(d.Graph, d.TrainIdx[:128])
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.RunMicroBatch(blocks, 1)
	if !errors.Is(err, device.ErrOOM) {
		t.Fatalf("want OOM, got %v", err)
	}
	// transient buffers must have been freed on the error path
	live := dev.LiveBuffers()
	for _, b := range live {
		switch b.Label() {
		case "parameters", "gradients", "optimizer-states":
		default:
			t.Fatalf("leaked transient buffer %q", b.Label())
		}
	}
}

func TestStepAppliesAndClears(t *testing.T) {
	d := testData(t)
	r := testRunner(t, d, nil)
	s := sample.New([]int{5, 5}, 1)
	blocks, _ := s.Sample(d.Graph, d.TrainIdx[:64])
	if _, err := r.RunMicroBatch(blocks, 1); err != nil {
		t.Fatal(err)
	}
	before := r.Model.Params()[0].Value.Clone()
	r.Step()
	after := r.Model.Params()[0].Value
	changed := false
	for i := range before.Data {
		if math.Float32bits(before.Data[i]) != math.Float32bits(after.Data[i]) {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("optimizer step did not change parameters")
	}
	for _, p := range r.Model.Params() {
		if p.Grad == nil {
			continue
		}
		for _, g := range p.Grad.Data {
			if g != 0 {
				t.Fatal("gradients not cleared after Step")
			}
		}
	}
}

func TestEvaluate(t *testing.T) {
	d := testData(t)
	r := testRunner(t, d, nil)
	s := sample.New([]int{5, 5}, 3)
	acc, err := r.Evaluate(s, d.TestIdx, 50)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy %v out of range", acc)
	}
	if _, err := r.Evaluate(s, nil, 10); err == nil {
		t.Fatal("empty evaluation accepted")
	}
}

func TestEmptyBatchRejected(t *testing.T) {
	d := testData(t)
	r := testRunner(t, d, nil)
	if _, err := r.RunMicroBatch(nil, 1); err == nil {
		t.Fatal("empty batch accepted")
	}
}

// Training for a few steps must reduce the loss on a learnable dataset.
func TestLossDecreases(t *testing.T) {
	d := testData(t)
	r := testRunner(t, d, nil)
	s := sample.New([]int{8, 8}, 5)
	var first, last float64
	for epoch := 0; epoch < 15; epoch++ {
		blocks, err := s.Sample(d.Graph, d.TrainIdx[:128])
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.RunMicroBatch(blocks, 1)
		if err != nil {
			t.Fatal(err)
		}
		r.Step()
		if epoch == 0 {
			first = res.Loss
		}
		last = res.Loss
	}
	if last >= first {
		t.Fatalf("loss did not decrease: %v -> %v", first, last)
	}
}

// maskedData returns a dataset where every third node is unlabeled
// (label < 0), the fixture for the masked-accuracy fixes.
func maskedData(t *testing.T) *dataset.Dataset {
	t.Helper()
	d := testData(t)
	for i := range d.Labels {
		if i%3 == 0 {
			d.Labels[i] = -1
		}
	}
	return d
}

// constModel is a parameterless Model that always predicts class 0,
// making expected accuracies exactly computable from the labels.
type constModel struct{ classes int }

func (m constModel) Params() []*tensor.Var { return nil }

func (m constModel) Forward(tp *tensor.Tape, blocks []*graph.Block, x *tensor.Var) *tensor.Var {
	out := tensor.New(blocks[len(blocks)-1].NumDst, m.classes)
	for i := 0; i < out.Rows(); i++ {
		out.Set(i, 0, 1)
	}
	return tensor.Leaf(out)
}

func (m constModel) Flops(blocks []*graph.Block) float64 { return 0 }

func (m constModel) Config() nn.Config {
	return nn.Config{InDim: 1, Hidden: 1, OutDim: m.classes, Layers: 2}
}

// Evaluate must score labeled seeds only: with a model that always predicts
// class 0, accuracy is exactly (#labeled seeds with label 0) / (#labeled).
// The old code counted masked seeds as wrong, deflating the denominator.
func TestEvaluateSkipsMaskedLabels(t *testing.T) {
	d := maskedData(t)
	r := NewRunner(constModel{classes: d.NumClasses}, d, nn.NewAdam(constModel{}, 0.01), nil)
	s := sample.New([]int{3, 3}, 11)
	got, err := r.Evaluate(s, d.TestIdx, 64)
	if err != nil {
		t.Fatal(err)
	}
	zeros, labeled := 0, 0
	for _, nid := range d.TestIdx {
		switch {
		case d.Labels[nid] < 0:
		case d.Labels[nid] == 0:
			zeros++
			labeled++
		default:
			labeled++
		}
	}
	want := float64(zeros) / float64(labeled)
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("Evaluate = %v, want %v (%d/%d labeled)", got, want, zeros, labeled)
	}
}

func TestEvaluateAllMaskedErrors(t *testing.T) {
	d := testData(t)
	for i := range d.Labels {
		d.Labels[i] = -1
	}
	r := testRunner(t, d, nil)
	s := sample.New([]int{3, 3}, 11)
	if _, err := r.Evaluate(s, d.TestIdx, 64); err == nil {
		t.Fatal("evaluation over fully masked seeds must error")
	}
}

// The chunk-parallel evaluator must return the identical accuracy for any
// worker count (order-independent sampling + integer chunk sums).
func TestEvaluateParallelDeterminism(t *testing.T) {
	d := testData(t)
	r := testRunner(t, d, nil)
	s := sample.New([]int{5, 5}, 3)
	defer parallel.SetWorkers(parallel.SetWorkers(1))
	want, err := r.Evaluate(s, d.TestIdx, 32)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 8} {
		parallel.SetWorkers(w)
		got, err := r.Evaluate(s, d.TestIdx, 32)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("workers=%d: accuracy %v != serial %v", w, got, want)
		}
	}
}

// RunMicroBatch already masked labels; pin that behaviour with the fixture.
func TestRunMicroBatchMaskedCount(t *testing.T) {
	d := maskedData(t)
	r := NewRunner(constModel{classes: d.NumClasses}, d, nn.NewAdam(constModel{}, 0.01), nil)
	s := sample.New([]int{5, 5}, 1)
	seeds := d.TrainIdx[:90]
	blocks, err := s.Sample(d.Graph, seeds)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.RunMicroBatch(blocks, 1)
	if err != nil {
		t.Fatal(err)
	}
	labeled := 0
	for _, nid := range seeds {
		if d.Labels[nid] >= 0 {
			labeled++
		}
	}
	if res.Count != labeled {
		t.Fatalf("Count = %d, want %d labeled of %d seeds", res.Count, labeled, len(seeds))
	}
}
