package train_test

import (
	"math"
	"testing"

	"betty/internal/core"
	"betty/internal/dataset"
	"betty/internal/device"
	"betty/internal/embcache"
	"betty/internal/obs"
	"betty/internal/parallel"
)

// The full-engine acceptance test for the exact cache mode: the engine's
// sample → REG-partition → micro-batch → step loop, with the cache
// attached to its runner, must produce bitwise the losses and parameters
// of the uncached engine — at one worker and at eight, under -race in CI.
// The partitioned micro-batches share layer-1 frontier nodes (REG
// minimizes but does not eliminate redundancy), so this is also the
// integration proof that same-version verify holds across micro-batches.
func TestEngineExactCacheBitwiseAtWorkers(t *testing.T) {
	d, err := dataset.Generate(dataset.GenConfig{
		Name: "t", Nodes: 600, AvgDegree: 8, FeatureDim: 16,
		NumClasses: 4, Homophily: 0.8, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}

	const epochs = 3
	run := func(cached bool) ([]uint64, []uint32, *embcache.Cache) {
		s, err := core.BuildSAGE(d, core.Options{
			Seed: 7, Hidden: 16, Fanouts: []int{4, 6}, FixedK: 2, LR: 0.01,
		})
		if err != nil {
			t.Fatal(err)
		}
		var c *embcache.Cache
		if cached {
			if c, err = embcache.New(embcache.Config{
				Mode: embcache.ModeExact, BudgetBytes: 8 * device.MiB, Obs: obs.New(nil),
			}); err != nil {
				t.Fatal(err)
			}
			s.Runner.Emb = c
		}
		var losses []uint64
		for e := 0; e < epochs; e++ {
			st, err := s.Engine.TrainEpochMicro()
			if err != nil {
				t.Fatal(err)
			}
			losses = append(losses, math.Float64bits(st.Loss))
		}
		var params []uint32
		for _, p := range s.Model.Params() {
			for _, v := range p.Value.Data {
				params = append(params, math.Float32bits(v))
			}
		}
		return losses, params, c
	}

	type result struct {
		losses []uint64
		params []uint32
	}
	var runs []result
	for _, w := range []int{1, 8} {
		prev := parallel.SetWorkers(w)
		base, baseParams, _ := run(false)
		cachedLosses, cachedParams, c := run(true)
		parallel.SetWorkers(prev)

		for e := range base {
			if base[e] != cachedLosses[e] {
				t.Fatalf("workers %d epoch %d: exact-cache loss differs from uncached", w, e+1)
			}
		}
		for i := range baseParams {
			if baseParams[i] != cachedParams[i] {
				t.Fatalf("workers %d: parameter %d differs with exact cache", w, i)
			}
		}
		if c.Dim() == 0 {
			t.Fatalf("workers %d: cache never populated", w)
		}
		runs = append(runs, result{cachedLosses, cachedParams})
	}

	// And the cached runs agree across worker counts, extending the
	// repo-wide worker-determinism invariant through the cache path.
	for e := range runs[0].losses {
		if runs[0].losses[e] != runs[1].losses[e] {
			t.Fatalf("epoch %d: cached loss differs between 1 and 8 workers", e+1)
		}
	}
	for i := range runs[0].params {
		if runs[0].params[i] != runs[1].params[i] {
			t.Fatalf("parameter %d differs between 1 and 8 workers", i)
		}
	}
}
