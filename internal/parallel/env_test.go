package parallel

import "testing"

func TestParseWorkers(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int
		ok   bool
	}{
		{"", 0, true}, // unset: caller falls back to GOMAXPROCS
		{"1", 1, true},
		{"8", 8, true},
		{"64", 64, true},
		{"0", 0, false},
		{"-3", 0, false},
		{"eight", 0, false},
		{"2.5", 0, false},
		{" 4", 0, false},
		{"4 ", 0, false},
		{"0x4", 0, false},
	} {
		got, err := ParseWorkers(tc.in)
		if tc.ok && (err != nil || got != tc.want) {
			t.Errorf("ParseWorkers(%q) = %d, %v; want %d, nil", tc.in, got, err, tc.want)
		}
		if !tc.ok && err == nil {
			t.Errorf("ParseWorkers(%q) = %d, nil; want error", tc.in, got)
		}
	}
}
