package parallel

import (
	"math"
	"sync"
	"testing"

	"betty/internal/rng"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, w := range []int{1, 2, 8} {
		defer SetWorkers(SetWorkers(w))
		for _, tc := range []struct{ n, grain int }{
			{0, 4}, {1, 4}, {7, 3}, {16, 4}, {100, 1}, {5, 100}, {33, 0},
		} {
			var mu sync.Mutex
			hits := make([]int, tc.n)
			For(tc.n, tc.grain, func(lo, hi int) {
				mu.Lock()
				defer mu.Unlock()
				for i := lo; i < hi; i++ {
					hits[i]++
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d grain=%d: index %d visited %d times", w, tc.n, tc.grain, i, h)
				}
			}
		}
	}
}

// The shard boundaries must depend only on (n, grain), never on the worker
// count — that is the invariant every deterministic caller relies on.
func TestForShardStructureIndependentOfWorkers(t *testing.T) {
	collect := func(w int) map[[2]int]bool {
		defer SetWorkers(SetWorkers(w))
		var mu sync.Mutex
		shards := map[[2]int]bool{}
		For(103, 7, func(lo, hi int) {
			mu.Lock()
			shards[[2]int{lo, hi}] = true
			mu.Unlock()
		})
		return shards
	}
	one, eight := collect(1), collect(8)
	if len(one) != len(eight) {
		t.Fatalf("shard counts differ: %d vs %d", len(one), len(eight))
	}
	for s := range one {
		if !eight[s] {
			t.Fatalf("shard %v missing under 8 workers", s)
		}
	}
	if want := NumShards(103, 7); len(one) != want {
		t.Fatalf("NumShards = %d but For ran %d shards", want, len(one))
	}
}

func TestSetWorkers(t *testing.T) {
	orig := Workers()
	defer SetWorkers(orig)
	if prev := SetWorkers(3); prev != orig {
		t.Fatalf("SetWorkers returned %d, want previous %d", prev, orig)
	}
	if Workers() != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(3)", Workers())
	}
	SetWorkers(0) // resets to default
	if Workers() < 1 {
		t.Fatalf("Workers() = %d after reset", Workers())
	}
}

// MapReduce must produce bitwise-identical floating-point sums for any
// worker count, because the fold happens in shard order on one goroutine.
func TestMapReduceDeterministicFloats(t *testing.T) {
	r := rng.New(11)
	vals := make([]float32, 10_000)
	for i := range vals {
		// wildly mixed magnitudes to make summation order observable
		vals[i] = r.Float32() * float32(int32(1)<<(uint(r.Intn(24))))
	}
	sum := func(workers int) float32 {
		defer SetWorkers(SetWorkers(workers))
		return MapReduce(len(vals), 64, func(lo, hi int) float32 {
			var s float32
			for i := lo; i < hi; i++ {
				s += vals[i]
			}
			return s
		}, func(a, b float32) float32 { return a + b })
	}
	want := sum(1)
	for _, w := range []int{2, 4, 8} {
		if got := sum(w); math.Float32bits(got) != math.Float32bits(want) {
			t.Fatalf("workers=%d sum %v != serial %v", w, got, want)
		}
	}
}

func TestMapReduceEmpty(t *testing.T) {
	got := MapReduce(0, 8, func(lo, hi int) int { return 1 }, func(a, b int) int { return a + b })
	if got != 0 {
		t.Fatalf("empty MapReduce = %d", got)
	}
}
