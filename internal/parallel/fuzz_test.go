package parallel

import (
	"sort"
	"sync"
	"testing"
)

// FuzzShards fuzzes the one invariant everything else stands on: For's
// shard decomposition covers [0, n) exactly once, matches NumShards, and
// is identical at every worker count.
func FuzzShards(f *testing.F) {
	f.Add(0, 1)
	f.Add(1, 1)
	f.Add(7, 3)
	f.Add(16, 4)
	f.Add(100, 1)
	f.Add(5, 100)
	f.Add(33, 0)
	f.Add(-2, 5)
	f.Fuzz(func(t *testing.T, n, grain int) {
		if n > 1<<16 || n < -8 || grain > 1<<16 || grain < -8 {
			t.Skip("bounded problem sizes keep the fuzz fast")
		}
		collect := func(w int) [][2]int {
			defer SetWorkers(SetWorkers(w))
			var mu sync.Mutex
			var shards [][2]int
			For(n, grain, func(lo, hi int) {
				mu.Lock()
				shards = append(shards, [2]int{lo, hi})
				mu.Unlock()
			})
			sort.Slice(shards, func(i, j int) bool { return shards[i][0] < shards[j][0] })
			return shards
		}
		serial := collect(1)
		if want := NumShards(n, grain); len(serial) != want {
			t.Fatalf("For(%d, %d) ran %d shards, NumShards says %d", n, grain, len(serial), want)
		}
		covered := 0
		for i, s := range serial {
			if s[0] >= s[1] {
				t.Fatalf("For(%d, %d): empty shard [%d, %d)", n, grain, s[0], s[1])
			}
			if i == 0 && s[0] != 0 {
				t.Fatalf("For(%d, %d): first shard starts at %d", n, grain, s[0])
			}
			if i > 0 && serial[i-1][1] != s[0] {
				t.Fatalf("For(%d, %d): gap or overlap between [.., %d) and [%d, ..)", n, grain, serial[i-1][1], s[0])
			}
			covered += s[1] - s[0]
		}
		if n > 0 && (covered != n || serial[len(serial)-1][1] != n) {
			t.Fatalf("For(%d, %d) covered %d elements", n, grain, covered)
		}
		if n <= 0 && covered != 0 {
			t.Fatalf("For(%d, %d) ran shards on an empty range", n, grain)
		}
		for _, w := range []int{2, 8} {
			got := collect(w)
			if len(got) != len(serial) {
				t.Fatalf("workers=%d: %d shards, serial %d", w, len(got), len(serial))
			}
			for i := range got {
				if got[i] != serial[i] {
					t.Fatalf("workers=%d: shard %d = %v, serial %v", w, i, got[i], serial[i])
				}
			}
		}
	})
}
