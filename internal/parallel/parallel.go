// Package parallel provides the worker pool behind every multi-core hot
// path in the repository: the row-blocked matmul kernels, REG pair
// emission, and chunk-parallel evaluation.
//
// The package is built around one invariant: *the decomposition of work is
// independent of the worker count*. For splits [0, n) into ceil(n/grain)
// contiguous shards determined only by n and grain; the number of workers
// controls how many shards execute concurrently, never where the shard
// boundaries fall. Any algorithm whose output depends only on the shard
// structure (for example, per-shard partial sums combined in shard order)
// is therefore bitwise-deterministic: SetWorkers(1) and SetWorkers(64)
// produce identical bytes.
//
// The worker count defaults to GOMAXPROCS and can be overridden by the
// BETTY_WORKERS environment variable or SetWorkers.
package parallel

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// workers is the current concurrency bound (always >= 1).
var workers atomic.Int64

func init() {
	workers.Store(int64(defaultWorkers()))
}

// ParseWorkers validates a BETTY_WORKERS override: it must be a positive
// decimal integer. The empty string means "unset" and returns (0, nil) so
// the caller falls back to GOMAXPROCS. Anything else — garbage, zero, or a
// negative count — is an error: a typo must fail loudly rather than
// silently train on a different worker count than the experiment intended.
func ParseWorkers(v string) (int, error) {
	if v == "" {
		return 0, nil
	}
	k, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("BETTY_WORKERS=%q: not an integer (want a positive worker count)", v)
	}
	if k <= 0 {
		return 0, fmt.Errorf("BETTY_WORKERS=%d: worker count must be positive", k)
	}
	return k, nil
}

// defaultWorkers returns GOMAXPROCS, overridden by BETTY_WORKERS when set.
// An invalid BETTY_WORKERS value panics at startup.
func defaultWorkers() int {
	k, err := ParseWorkers(os.Getenv("BETTY_WORKERS"))
	if err != nil {
		panic("parallel: " + err.Error())
	}
	if k > 0 {
		return k
	}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		return n
	}
	return 1
}

// Workers returns the current worker count.
func Workers() int { return int(workers.Load()) }

// SetWorkers sets the worker count and returns the previous value; n <= 0
// resets to the default (GOMAXPROCS / BETTY_WORKERS). Tests use the
// returned value to restore the global:
//
//	defer parallel.SetWorkers(parallel.SetWorkers(8))
func SetWorkers(n int) int {
	if n <= 0 {
		n = defaultWorkers()
	}
	return int(workers.Swap(int64(n)))
}

// NumShards returns the number of shards For(n, grain, ·) executes:
// ceil(n/grain), with grain clamped to at least 1. It depends only on n
// and grain — never on the worker count.
func NumShards(n, grain int) int {
	if n <= 0 {
		return 0
	}
	if grain < 1 {
		grain = 1
	}
	return (n + grain - 1) / grain
}

// For executes fn over [0, n) in contiguous shards of size grain (the last
// shard may be shorter). Shard s covers [s*grain, min((s+1)*grain, n));
// fn(lo, hi) must touch only state owned by that range. Up to Workers()
// shards run concurrently; with one worker (or a single shard) everything
// runs inline on the calling goroutine, in shard order.
func For(n, grain int, fn func(lo, hi int)) {
	if grain < 1 {
		grain = 1
	}
	shards := NumShards(n, grain)
	if shards == 0 {
		return
	}
	w := Workers()
	if w > shards {
		w = shards
	}
	if w <= 1 {
		for lo := 0; lo < n; lo += grain {
			hi := lo + grain
			if hi > n {
				hi = n
			}
			fn(lo, hi)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				s := int(next.Add(1)) - 1
				if s >= shards {
					return
				}
				lo := s * grain
				hi := lo + grain
				if hi > n {
					hi = n
				}
				fn(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// ForShards executes fn over the irregular contiguous shards described by
// bounds: shard s covers [bounds[s], bounds[s+1]). It is For for callers
// that derive their own shard boundaries from the data — for example the
// tensor segment kernels, which cut only on destination-segment boundaries
// so each shard owns a disjoint set of output rows. The same invariant
// applies: bounds must be a function of the problem only, never of the
// worker count; the worker count only bounds how many shards run
// concurrently. With one worker (or one shard) everything runs inline in
// shard order.
func ForShards(bounds []int, fn func(lo, hi int)) {
	shards := len(bounds) - 1
	if shards <= 0 {
		return
	}
	w := Workers()
	if w > shards {
		w = shards
	}
	if w <= 1 {
		for s := 0; s < shards; s++ {
			if bounds[s] < bounds[s+1] {
				fn(bounds[s], bounds[s+1])
			}
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				s := int(next.Add(1)) - 1
				if s >= shards {
					return
				}
				if bounds[s] < bounds[s+1] {
					fn(bounds[s], bounds[s+1])
				}
			}
		}()
	}
	wg.Wait()
}

// MapReduce maps each shard of [0, n) to a value and folds the per-shard
// values in ascending shard order, so the reduction tree — and with it any
// floating-point result — is identical for every worker count. The fold is
// left-to-right: reduce(...reduce(reduce(m0, m1), m2)..., mLast).
func MapReduce[T any](n, grain int, mapFn func(lo, hi int) T, reduce func(acc, v T) T) T {
	var zero T
	if grain < 1 {
		grain = 1
	}
	shards := NumShards(n, grain)
	if shards == 0 {
		return zero
	}
	parts := make([]T, shards)
	For(n, grain, func(lo, hi int) {
		parts[lo/grain] = mapFn(lo, hi)
	})
	acc := parts[0]
	for _, p := range parts[1:] {
		acc = reduce(acc, p)
	}
	return acc
}
