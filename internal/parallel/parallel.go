// Package parallel provides the worker pool behind every multi-core hot
// path in the repository: the row-blocked matmul kernels, REG pair
// emission, and chunk-parallel evaluation.
//
// The package is built around one invariant: *the decomposition of work is
// independent of the worker count*. For splits [0, n) into ceil(n/grain)
// contiguous shards determined only by n and grain; the number of workers
// controls how many shards execute concurrently, never where the shard
// boundaries fall. Any algorithm whose output depends only on the shard
// structure (for example, per-shard partial sums combined in shard order)
// is therefore bitwise-deterministic: SetWorkers(1) and SetWorkers(64)
// produce identical bytes.
//
// The worker count defaults to GOMAXPROCS and can be overridden by the
// BETTY_WORKERS environment variable or SetWorkers.
package parallel

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// workers is the current concurrency bound (always >= 1).
var workers atomic.Int64

func init() {
	workers.Store(int64(defaultWorkers()))
}

// --- persistent worker pool ---
//
// Earlier revisions spawned fresh goroutines (and a WaitGroup) on every
// parallel call, which showed up as ~200 extra allocations per training
// step at BETTY_WORKERS=8 (BENCH_step.json, PR 2). The pool below keeps
// long-lived workers fed through a buffered channel and recycles the
// per-call job descriptor through a sync.Pool, so a steady-state parallel
// call allocates nothing beyond the caller's own closure.
//
// Work distribution is unchanged: a job exposes its shards through an
// atomic cursor and any subset of workers (plus the submitting goroutine,
// which always participates) drains them. Shard boundaries remain a pure
// function of the problem, so results are bitwise identical no matter how
// many workers actually run.

// job is one parallel call in flight. Exactly one of bounds (irregular
// shards) or grain (regular shards over [0, n)) describes the shard
// structure.
type job struct {
	fn     func(lo, hi int)
	n      int
	grain  int
	bounds []int
	shards int
	next   atomic.Int64
	wg     sync.WaitGroup
}

// run drains shards until the cursor is exhausted.
func (j *job) run() {
	for {
		s := int(j.next.Add(1)) - 1
		if s >= j.shards {
			return
		}
		var lo, hi int
		if j.bounds != nil {
			lo, hi = j.bounds[s], j.bounds[s+1]
			if lo >= hi {
				continue
			}
		} else {
			lo = s * j.grain
			hi = lo + j.grain
			if hi > j.n {
				hi = j.n
			}
		}
		j.fn(lo, hi)
	}
}

var (
	jobPool = sync.Pool{New: func() any { return new(job) }}
	// jobs is the feed channel of the persistent workers. Sends are
	// non-blocking: when every worker is busy (including the nested-call
	// case, where a worker's fn itself issues a parallel call), the
	// submitter simply runs more shards on its own goroutine.
	jobs = make(chan *job, 256)
	// spawned counts the persistent workers launched so far; workers are
	// started lazily, up to the largest concurrency any call has asked for.
	spawned atomic.Int64
)

// ensureWorkers lazily grows the persistent pool to at least w-1 workers
// (the submitting goroutine is the w-th).
func ensureWorkers(w int) {
	need := int64(w - 1)
	for {
		cur := spawned.Load()
		if cur >= need {
			return
		}
		if spawned.CompareAndSwap(cur, cur+1) {
			go func() {
				for j := range jobs {
					j.run()
					j.wg.Done()
				}
			}()
		}
	}
}

// dispatch runs j with up to w concurrent executors and recycles it.
func dispatch(j *job, w int) {
	ensureWorkers(w)
	for i := 0; i < w-1; i++ {
		j.wg.Add(1)
		select {
		case jobs <- j:
		default:
			// Pool saturated (e.g. a nested call from inside a worker):
			// stop posting and let the submitter drain the rest itself.
			j.wg.Done()
			i = w // exit the posting loop
		}
	}
	j.run() // the submitter always participates
	j.wg.Wait()
	j.fn = nil
	j.bounds = nil
	jobPool.Put(j)
}

// ParseWorkers validates a BETTY_WORKERS override: it must be a positive
// decimal integer. The empty string means "unset" and returns (0, nil) so
// the caller falls back to GOMAXPROCS. Anything else — garbage, zero, or a
// negative count — is an error: a typo must fail loudly rather than
// silently train on a different worker count than the experiment intended.
func ParseWorkers(v string) (int, error) {
	if v == "" {
		return 0, nil
	}
	k, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("BETTY_WORKERS=%q: not an integer (want a positive worker count)", v)
	}
	if k <= 0 {
		return 0, fmt.Errorf("BETTY_WORKERS=%d: worker count must be positive", k)
	}
	return k, nil
}

// defaultWorkers returns GOMAXPROCS, overridden by BETTY_WORKERS when set.
// An invalid BETTY_WORKERS value panics at startup.
func defaultWorkers() int {
	k, err := ParseWorkers(os.Getenv("BETTY_WORKERS"))
	if err != nil {
		panic("parallel: " + err.Error())
	}
	if k > 0 {
		return k
	}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		return n
	}
	return 1
}

// Workers returns the current worker count.
func Workers() int { return int(workers.Load()) }

// SetWorkers sets the worker count and returns the previous value; n <= 0
// resets to the default (GOMAXPROCS / BETTY_WORKERS). Tests use the
// returned value to restore the global:
//
//	defer parallel.SetWorkers(parallel.SetWorkers(8))
func SetWorkers(n int) int {
	if n <= 0 {
		n = defaultWorkers()
	}
	return int(workers.Swap(int64(n)))
}

// NumShards returns the number of shards For(n, grain, ·) executes:
// ceil(n/grain), with grain clamped to at least 1. It depends only on n
// and grain — never on the worker count.
func NumShards(n, grain int) int {
	if n <= 0 {
		return 0
	}
	if grain < 1 {
		grain = 1
	}
	return (n + grain - 1) / grain
}

// For executes fn over [0, n) in contiguous shards of size grain (the last
// shard may be shorter). Shard s covers [s*grain, min((s+1)*grain, n));
// fn(lo, hi) must touch only state owned by that range. Up to Workers()
// shards run concurrently; with one worker (or a single shard) everything
// runs inline on the calling goroutine, in shard order.
func For(n, grain int, fn func(lo, hi int)) {
	if grain < 1 {
		grain = 1
	}
	shards := NumShards(n, grain)
	if shards == 0 {
		return
	}
	w := Workers()
	if w > shards {
		w = shards
	}
	if w <= 1 {
		for lo := 0; lo < n; lo += grain {
			hi := lo + grain
			if hi > n {
				hi = n
			}
			fn(lo, hi)
		}
		return
	}
	j := jobPool.Get().(*job)
	j.fn, j.n, j.grain, j.bounds, j.shards = fn, n, grain, nil, shards
	j.next.Store(0)
	dispatch(j, w)
}

// ForShards executes fn over the irregular contiguous shards described by
// bounds: shard s covers [bounds[s], bounds[s+1]). It is For for callers
// that derive their own shard boundaries from the data — for example the
// tensor segment kernels, which cut only on destination-segment boundaries
// so each shard owns a disjoint set of output rows. The same invariant
// applies: bounds must be a function of the problem only, never of the
// worker count; the worker count only bounds how many shards run
// concurrently. With one worker (or one shard) everything runs inline in
// shard order.
func ForShards(bounds []int, fn func(lo, hi int)) {
	shards := len(bounds) - 1
	if shards <= 0 {
		return
	}
	w := Workers()
	if w > shards {
		w = shards
	}
	if w <= 1 {
		for s := 0; s < shards; s++ {
			if bounds[s] < bounds[s+1] {
				fn(bounds[s], bounds[s+1])
			}
		}
		return
	}
	j := jobPool.Get().(*job)
	j.fn, j.n, j.grain, j.bounds, j.shards = fn, 0, 0, bounds, shards
	j.next.Store(0)
	dispatch(j, w)
}

// MapReduce maps each shard of [0, n) to a value and folds the per-shard
// values in ascending shard order, so the reduction tree — and with it any
// floating-point result — is identical for every worker count. The fold is
// left-to-right: reduce(...reduce(reduce(m0, m1), m2)..., mLast).
func MapReduce[T any](n, grain int, mapFn func(lo, hi int) T, reduce func(acc, v T) T) T {
	var zero T
	if grain < 1 {
		grain = 1
	}
	shards := NumShards(n, grain)
	if shards == 0 {
		return zero
	}
	parts := make([]T, shards)
	For(n, grain, func(lo, hi int) {
		parts[lo/grain] = mapFn(lo, hi)
	})
	acc := parts[0]
	for _, p := range parts[1:] {
		acc = reduce(acc, p)
	}
	return acc
}
