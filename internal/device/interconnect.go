package device

// Interconnect models the device-to-device link of a multi-accelerator
// node: peer copies bypass the host, so they run at NVLink-class bandwidth
// instead of the PCIe host link. Split-parallel training uses it for two
// kinds of traffic: halo (boundary) feature exchange between micro-batch
// shards and the gradient all-reduce that closes an epoch.
type Interconnect struct {
	// Bandwidth is the peer-to-peer copy bandwidth in bytes/second.
	Bandwidth float64
	// Latency is the fixed per-message setup cost in seconds.
	Latency float64
}

// DefaultInterconnect returns the interconnect used by all experiments:
// an NVLink-class 50 GB/s link with a 5 us message latency.
func DefaultInterconnect() Interconnect {
	return Interconnect{Bandwidth: 50e9, Latency: 5e-6}
}

// TransferTime returns the simulated seconds to move n bytes peer-to-peer.
func (ic Interconnect) TransferTime(n int64) float64 {
	if n <= 0 {
		return 0
	}
	bw := ic.Bandwidth
	if bw <= 0 {
		bw = DefaultInterconnect().Bandwidth
	}
	return ic.Latency + float64(n)/bw
}

// TreeAllReduce returns the simulated cost of a deterministic binomial-tree
// all-reduce of n bytes across d devices: seconds of critical-path time,
// the total bytes that cross the interconnect, and the number of serialized
// rounds. The schedule is reduce-up-the-tree then broadcast-down (see
// TreeReduceSchedule); each phase runs ceil(log2 d) rounds whose transfers
// proceed in parallel, and every round moves n bytes per participating
// pair, so the total traffic is 2*(d-1)*n.
func (ic Interconnect) TreeAllReduce(d int, n int64) (seconds float64, totalBytes int64, rounds int) {
	if d <= 1 || n <= 0 {
		return 0, 0, 0
	}
	levels := treeLevels(d)
	rounds = 2 * levels // reduce + broadcast
	seconds = float64(rounds) * ic.TransferTime(n)
	totalBytes = 2 * int64(d-1) * n
	return seconds, totalBytes, rounds
}

// treeLevels returns ceil(log2 d) without floating point.
func treeLevels(d int) int {
	levels := 0
	for span := 1; span < d; span *= 2 {
		levels++
	}
	return levels
}

// TreeReduceSchedule returns the deterministic pairing of the reduce phase:
// one slice per round, each holding (src, dst) device pairs where src sends
// its n bytes to dst and dst folds src's contribution into its own. Round r
// uses stride 2^r: device i with i mod 2^(r+1) == 2^r sends to i - 2^r.
// After the last round device 0 holds the fold of every device's
// contribution in a fixed order, which is what makes the merge
// deterministic at any device count. The broadcast phase mirrors the same
// pairs in reverse round order.
func TreeReduceSchedule(d int) [][][2]int {
	if d <= 1 {
		return nil
	}
	var schedule [][][2]int
	for stride := 1; stride < d; stride *= 2 {
		var round [][2]int
		for dst := 0; dst+stride < d; dst += 2 * stride {
			round = append(round, [2]int{dst + stride, dst})
		}
		schedule = append(schedule, round)
	}
	return schedule
}

// Exchange accounts a peer-to-peer copy of n bytes received by this device
// over the interconnect and returns the simulated seconds it took. The
// time accrues to the device's transfer clock and the bytes to its traffic
// counter, alongside host-to-device copies.
func (d *Device) Exchange(n int64, ic Interconnect) float64 {
	t := ic.TransferTime(n)
	d.mu.Lock()
	defer d.mu.Unlock()
	d.transferTime += t
	d.transferred += n
	return t
}
