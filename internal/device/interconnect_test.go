package device

import (
	"math"
	"testing"
)

func TestInterconnectTransferTime(t *testing.T) {
	ic := Interconnect{Bandwidth: 50e9, Latency: 5e-6}
	if got := ic.TransferTime(0); got != 0 {
		t.Fatalf("zero bytes cost %v", got)
	}
	want := 5e-6 + 1e6/50e9
	if got := ic.TransferTime(1e6); math.Abs(got-want) > 1e-12 {
		t.Fatalf("TransferTime(1e6) = %v, want %v", got, want)
	}
	// A zero-value interconnect falls back to the default bandwidth
	// instead of dividing by zero.
	if got := (Interconnect{}).TransferTime(1e6); math.IsInf(got, 0) || got <= 0 {
		t.Fatalf("zero-value interconnect time = %v", got)
	}
}

func TestTreeAllReduce(t *testing.T) {
	ic := DefaultInterconnect()
	if s, b, r := ic.TreeAllReduce(1, 1<<20); s != 0 || b != 0 || r != 0 {
		t.Fatalf("single device all-reduce cost %v/%d/%d", s, b, r)
	}
	for _, tc := range []struct {
		d, rounds int
		bytes     int64
	}{
		{2, 2, 2 * 1 << 20},
		{3, 4, 4 * 1 << 20},
		{4, 4, 6 * 1 << 20},
		{8, 6, 14 * 1 << 20},
	} {
		s, b, r := ic.TreeAllReduce(tc.d, 1<<20)
		if r != tc.rounds {
			t.Fatalf("d=%d rounds = %d, want %d", tc.d, r, tc.rounds)
		}
		if b != tc.bytes {
			t.Fatalf("d=%d total bytes = %d, want %d", tc.d, b, tc.bytes)
		}
		want := float64(r) * ic.TransferTime(1<<20)
		if math.Abs(s-want) > 1e-12 {
			t.Fatalf("d=%d seconds = %v, want %v", tc.d, s, want)
		}
	}
}

// Every device's contribution must reach device 0 exactly once, along a
// deterministic pairing: the schedule is what makes the simulated gradient
// merge bitwise reproducible at any device count.
func TestTreeReduceSchedule(t *testing.T) {
	if s := TreeReduceSchedule(1); s != nil {
		t.Fatalf("single device schedule %v", s)
	}
	for d := 2; d <= 9; d++ {
		sched := TreeReduceSchedule(d)
		if len(sched) != treeLevels(d) {
			t.Fatalf("d=%d: %d rounds, want %d", d, len(sched), treeLevels(d))
		}
		sent := make([]bool, d)
		pairs := 0
		for _, round := range sched {
			for _, p := range round {
				src, dst := p[0], p[1]
				if src <= dst || src >= d || dst < 0 {
					t.Fatalf("d=%d: bad pair %v", d, p)
				}
				if sent[src] {
					t.Fatalf("d=%d: device %d sends twice", d, src)
				}
				if sent[dst] {
					t.Fatalf("d=%d: device %d receives after sending", d, dst)
				}
				sent[src] = true
				pairs++
			}
		}
		// every device except the root sends exactly once
		if pairs != d-1 {
			t.Fatalf("d=%d: %d sends, want %d", d, pairs, d-1)
		}
		if sent[0] {
			t.Fatal("root sent its contribution away")
		}
	}
}

func TestDeviceExchange(t *testing.T) {
	d := New(GiB, DefaultCostModel())
	ic := Interconnect{Bandwidth: 50e9, Latency: 5e-6}
	sec := d.Exchange(1<<20, ic)
	if want := ic.TransferTime(1 << 20); math.Abs(sec-want) > 1e-12 {
		t.Fatalf("Exchange returned %v, want %v", sec, want)
	}
	if math.Abs(d.TransferSeconds()-sec) > 1e-12 {
		t.Fatalf("transfer clock %v, want %v", d.TransferSeconds(), sec)
	}
	if d.BytesTransferred() != 1<<20 {
		t.Fatalf("transferred %d bytes", d.BytesTransferred())
	}
}
