package device

import (
	"errors"
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestAllocFreePeak(t *testing.T) {
	d := New(10*KiB, DefaultCostModel())
	a, err := d.Alloc(1000, "a") // rounds to 1024
	if err != nil {
		t.Fatal(err)
	}
	if a.Bytes() != 1024 {
		t.Fatalf("rounded size = %d, want 1024", a.Bytes())
	}
	if d.Used() != 1024 {
		t.Fatalf("used = %d", d.Used())
	}
	b, err := d.Alloc(2048, "b")
	if err != nil {
		t.Fatal(err)
	}
	if d.Peak() != 3072 {
		t.Fatalf("peak = %d", d.Peak())
	}
	d.Free(a)
	if d.Used() != 2048 {
		t.Fatalf("used after free = %d", d.Used())
	}
	if d.Peak() != 3072 {
		t.Fatal("peak must not decrease on free")
	}
	d.Free(b)
	if d.Used() != 0 {
		t.Fatal("used should be zero")
	}
}

func TestOOM(t *testing.T) {
	d := New(4*KiB, DefaultCostModel())
	if _, err := d.Alloc(3*KiB, "big"); err != nil {
		t.Fatal(err)
	}
	_, err := d.Alloc(2*KiB, "overflow")
	if !errors.Is(err, ErrOOM) {
		t.Fatalf("expected ErrOOM, got %v", err)
	}
	// after freeing, the same allocation succeeds
	d.FreeAll()
	if _, err := d.Alloc(2*KiB, "retry"); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeAllocRejected(t *testing.T) {
	d := New(KiB, DefaultCostModel())
	if _, err := d.Alloc(-1, "neg"); err == nil {
		t.Fatal("negative allocation accepted")
	}
}

func TestDoubleFreeIgnored(t *testing.T) {
	d := New(KiB, DefaultCostModel())
	b, _ := d.Alloc(100, "x")
	d.Free(b)
	d.Free(b)
	if d.Used() != 0 {
		t.Fatalf("double free corrupted ledger: used = %d", d.Used())
	}
}

func TestResetPeak(t *testing.T) {
	d := New(10*KiB, DefaultCostModel())
	b, _ := d.Alloc(4*KiB, "x")
	d.Free(b)
	d.ResetPeak()
	if d.Peak() != 0 {
		t.Fatalf("peak after reset = %d", d.Peak())
	}
}

func TestCostModelMonotone(t *testing.T) {
	m := DefaultCostModel()
	if m.TransferTime(0) != 0 || m.ComputeTime(0) != 0 {
		t.Fatal("zero work should cost zero time")
	}
	if m.TransferTime(1000) >= m.TransferTime(1000000) {
		t.Fatal("transfer time not monotone in bytes")
	}
	if m.ComputeTime(1e6) >= m.ComputeTime(1e9) {
		t.Fatal("compute time not monotone in flops")
	}
	// latency floor
	if m.TransferTime(1) < m.TransferLatency {
		t.Fatal("latency not applied")
	}
}

func TestClockAccumulation(t *testing.T) {
	d := New(GiB, DefaultCostModel())
	t1 := d.Transfer(12e9 / 2) // about half a second of bandwidth
	t2 := d.Compute(5e12)      // about one second of compute
	if math.Float64bits(d.TransferSeconds()) != math.Float64bits(t1) ||
		math.Float64bits(d.ComputeSeconds()) != math.Float64bits(t2) {
		t.Fatal("clock accumulation mismatch")
	}
	if d.BytesTransferred() != 6e9 {
		t.Fatalf("bytes transferred = %d", d.BytesTransferred())
	}
	d.ResetClocks()
	if d.TransferSeconds() != 0 || d.ComputeSeconds() != 0 || d.BytesTransferred() != 0 {
		t.Fatal("ResetClocks incomplete")
	}
}

func TestComputeKernels(t *testing.T) {
	m := DefaultCostModel()
	d := New(GiB, m)
	// pure flops, no kernels
	t0 := d.ComputeKernels(5e12, 0)
	if t0 != 1.0 {
		t.Fatalf("flops-only time %v, want 1.0", t0)
	}
	// kernel launches add latency linearly
	d2 := New(GiB, m)
	t1 := d2.ComputeKernels(0, 1000)
	if math.Float64bits(t1) != math.Float64bits(1000*m.KernelLatency) {
		t.Fatalf("kernel-only time %v", t1)
	}
	if math.Float64bits(d2.ComputeSeconds()) != math.Float64bits(t1) {
		t.Fatal("kernel time not accumulated")
	}
}

// Property: the ledger is conservative — used equals the sum of live
// buffer sizes after arbitrary alloc/free interleavings.
func TestLedgerConservation(t *testing.T) {
	f := func(ops []uint8) bool {
		d := New(1*MiB, DefaultCostModel())
		var live []*Buffer
		for _, op := range ops {
			if op%3 == 0 && len(live) > 0 {
				i := int(op) % len(live)
				d.Free(live[i])
				live = append(live[:i], live[i+1:]...)
			} else {
				b, err := d.Alloc(int64(op)*37, "p")
				if err == nil {
					live = append(live, b)
				}
			}
		}
		var sum int64
		for _, b := range live {
			sum += b.Bytes()
		}
		return sum == d.Used() && d.Peak() >= d.Used()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLiveBuffersSorted(t *testing.T) {
	d := New(MiB, DefaultCostModel())
	d.Alloc(100, "small")
	d.Alloc(10000, "large")
	d.Alloc(5000, "mid")
	bufs := d.LiveBuffers()
	if len(bufs) != 3 {
		t.Fatalf("live count = %d", len(bufs))
	}
	if bufs[0].Label() != "large" || bufs[2].Label() != "small" {
		t.Fatalf("not sorted by size: %v, %v, %v", bufs[0].Label(), bufs[1].Label(), bufs[2].Label())
	}
}

// The ledger is shared by parallel evaluators and multi-goroutine training
// paths; concurrent alloc/free/clock traffic must stay consistent (run with
// -race to catch unguarded access).
func TestConcurrentLedger(t *testing.T) {
	d := New(GiB, DefaultCostModel())
	const goroutines, rounds = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				buf, err := d.Alloc(4096, "worker")
				if err != nil {
					t.Error(err)
					return
				}
				d.Transfer(4096)
				d.ComputeKernels(1e6, 2)
				_ = d.Used()
				_ = d.Peak()
				d.Free(buf)
			}
		}()
	}
	wg.Wait()
	if d.Used() != 0 {
		t.Fatalf("used = %d after all frees", d.Used())
	}
	if d.Peak() < 4096 || d.Peak() > int64(goroutines)*4096 {
		t.Fatalf("peak = %d out of expected range", d.Peak())
	}
	if d.BytesTransferred() != int64(goroutines*rounds)*4096 {
		t.Fatalf("transferred = %d", d.BytesTransferred())
	}
}
