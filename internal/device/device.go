// Package device simulates the accelerator the paper trains on: a memory
// ledger with a hard capacity that produces out-of-memory errors exactly
// when allocations exceed it, and a deterministic cost model for host-to-
// device transfers and compute.
//
// The paper's claims are stated in bytes allocated and relative time, not
// in CUDA specifics, so a byte-accurate ledger reproduces the OOM
// boundaries and the cost model reproduces the time *shape* (who wins,
// where the knees fall). Determinism means benchmarks and tests are stable
// across machines.
package device

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrOOM is returned (wrapped) when an allocation would exceed capacity.
var ErrOOM = errors.New("device: out of memory")

// Common byte sizes.
const (
	KiB int64 = 1024
	MiB       = 1024 * KiB
	GiB       = 1024 * MiB
)

// CostModel converts bytes and floating-point operations into simulated
// seconds. The defaults approximate a PCIe 3.0 x16 link and a mid-range
// fp32 accelerator; only ratios matter for the reproduced figures.
type CostModel struct {
	// H2DBandwidth is the host-to-device copy bandwidth in bytes/second.
	H2DBandwidth float64
	// TransferLatency is the fixed per-transfer setup cost in seconds.
	TransferLatency float64
	// Throughput is the effective compute rate in FLOP/second.
	Throughput float64
	// KernelLatency is the fixed per-kernel launch cost in seconds.
	KernelLatency float64
}

// DefaultCostModel returns the cost model used by all experiments.
func DefaultCostModel() CostModel {
	return CostModel{
		H2DBandwidth:    12e9,  // ~PCIe 3.0 x16 effective
		TransferLatency: 20e-6, // 20 us per transfer
		Throughput:      5e12,  // 5 TFLOP/s effective fp32
		KernelLatency:   5e-6,  // 5 us per kernel
	}
}

// TransferTime returns the simulated seconds to copy n bytes host->device.
func (m CostModel) TransferTime(n int64) float64 {
	if n <= 0 {
		return 0
	}
	return m.TransferLatency + float64(n)/m.H2DBandwidth
}

// ComputeTime returns the simulated seconds to execute flops operations.
func (m CostModel) ComputeTime(flops float64) float64 {
	if flops <= 0 {
		return 0
	}
	return m.KernelLatency + flops/m.Throughput
}

// AllocGranularity is the block size the simulated caching allocator rounds
// every allocation up to, mirroring CUDA caching allocators. It is the main
// source of the gap between estimated and "measured" memory (Table 7).
const AllocGranularity int64 = 512

// Buffer is a live allocation on the device.
type Buffer struct {
	id    int64
	bytes int64
	label string
	freed bool
}

// Bytes returns the allocation's rounded byte size.
func (b *Buffer) Bytes() int64 { return b.bytes }

// Label returns the label given at allocation time.
func (b *Buffer) Label() string { return b.label }

// Device is a simulated accelerator: an allocation ledger with capacity
// plus accumulated transfer/compute clocks. All methods are safe for
// concurrent use: the ledger is guarded by a mutex so the chunk-parallel
// evaluator and multi-goroutine training paths can share one device.
type Device struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	peak     int64
	nextID   int64
	live     map[int64]*Buffer

	model        CostModel
	transferTime float64
	computeTime  float64
	transferred  int64
}

// New returns a device with the given memory capacity and cost model.
func New(capacity int64, model CostModel) *Device {
	return &Device{capacity: capacity, model: model, live: make(map[int64]*Buffer)}
}

// Capacity returns the configured memory capacity in bytes.
func (d *Device) Capacity() int64 { return d.capacity }

// Used returns the currently allocated bytes (after rounding).
func (d *Device) Used() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.used
}

// Peak returns the maximum of Used over the device's lifetime (or since
// ResetPeak).
func (d *Device) Peak() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.peak
}

// Alloc reserves n bytes (rounded up to AllocGranularity) under a label.
// It fails with an error wrapping ErrOOM if capacity would be exceeded.
func (d *Device) Alloc(n int64, label string) (*Buffer, error) {
	if n < 0 {
		return nil, fmt.Errorf("device: negative allocation %d (%s)", n, label)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	rounded := (n + AllocGranularity - 1) / AllocGranularity * AllocGranularity
	if d.used+rounded > d.capacity {
		return nil, fmt.Errorf("%w: %q needs %d bytes, %d of %d in use",
			ErrOOM, label, rounded, d.used, d.capacity)
	}
	d.nextID++
	b := &Buffer{id: d.nextID, bytes: rounded, label: label}
	d.live[b.id] = b
	d.used += rounded
	if d.used > d.peak {
		d.peak = d.used
	}
	return b, nil
}

// Free releases a buffer. Double frees are ignored.
func (d *Device) Free(b *Buffer) {
	if b == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if b.freed {
		return
	}
	if _, ok := d.live[b.id]; !ok {
		return
	}
	delete(d.live, b.id)
	d.used -= b.bytes
	b.freed = true
}

// FreeAll releases every live buffer (end of a training step).
func (d *Device) FreeAll() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, b := range d.live {
		d.used -= b.bytes
		b.freed = true
	}
	d.live = make(map[int64]*Buffer)
}

// ResetPeak sets the peak tracker to the current usage.
func (d *Device) ResetPeak() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.peak = d.used
}

// Transfer accounts a host-to-device copy of n bytes and returns the
// simulated seconds it took.
func (d *Device) Transfer(n int64) float64 {
	t := d.model.TransferTime(n)
	d.mu.Lock()
	defer d.mu.Unlock()
	d.transferTime += t
	d.transferred += n
	return t
}

// Compute accounts a kernel of the given FLOP count and returns the
// simulated seconds it took.
func (d *Device) Compute(flops float64) float64 {
	t := d.model.ComputeTime(flops)
	d.mu.Lock()
	defer d.mu.Unlock()
	d.computeTime += t
	return t
}

// ComputeKernels accounts a batch of kernels with a total FLOP count: the
// FLOP time plus one launch latency per kernel. Training steps issue one
// kernel per recorded operation (and roughly two more each in backward),
// so per-batch launch overhead grows with partitioning — the "lower GPU
// utilization" cost of many small micro-batches (§6.3).
func (d *Device) ComputeKernels(flops float64, kernels int) float64 {
	t := flops / d.model.Throughput
	if kernels > 0 {
		t += float64(kernels) * d.model.KernelLatency
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.computeTime += t
	return t
}

// TransferSeconds returns the accumulated simulated transfer time.
func (d *Device) TransferSeconds() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.transferTime
}

// ComputeSeconds returns the accumulated simulated compute time.
func (d *Device) ComputeSeconds() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.computeTime
}

// BytesTransferred returns the accumulated host-to-device traffic.
func (d *Device) BytesTransferred() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.transferred
}

// ResetClocks zeroes the transfer/compute accumulators.
func (d *Device) ResetClocks() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.transferTime, d.computeTime, d.transferred = 0, 0, 0
}

// LiveBuffers returns the labels and sizes of live allocations sorted by
// descending size — a debugging aid when chasing simulated OOM.
func (d *Device) LiveBuffers() []Buffer {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Buffer, 0, len(d.live))
	for _, b := range d.live {
		out = append(out, *b)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].bytes != out[j].bytes {
			return out[i].bytes > out[j].bytes
		}
		return out[i].id < out[j].id
	})
	return out
}
