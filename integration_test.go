package betty_test

// End-to-end integration tests across the whole stack: the memory-wall
// story (full batch OOMs → planner partitions → training fits and learns →
// checkpoint round-trips → layer-wise inference agrees), exercised through
// the same public surface the examples and CLIs use.

import (
	"bytes"
	"errors"
	"testing"

	"betty/internal/checkpoint"
	"betty/internal/core"
	"betty/internal/dataset"
	"betty/internal/device"
	"betty/internal/memory"
	"betty/internal/nn"
)

func TestEndToEndMemoryWallStory(t *testing.T) {
	ds, err := dataset.LoadScaled("ogbn-arxiv", 0.05)
	if err != nil {
		t.Fatal(err)
	}

	// 1. Find the full-batch footprint and set a budget below it.
	probe, err := core.BuildSAGE(ds, core.Options{Seed: 5, Hidden: 32, Fanouts: []int{5, 10}, FixedK: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, plan, err := probe.Engine.PlanEpoch(ds.TrainIdx)
	if err != nil {
		t.Fatal(err)
	}
	capacity := plan.MaxPeak * 3 / 5

	// 2. Full-batch training on that budget must OOM.
	full, err := core.BuildSAGE(ds, core.Options{
		Seed: 5, Hidden: 32, Fanouts: []int{5, 10}, FixedK: 1,
		Device: device.New(capacity, device.DefaultCostModel()),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := full.Engine.TrainEpochFull(); !errors.Is(err, device.ErrOOM) {
		t.Fatalf("expected OOM on the constrained device, got %v", err)
	}

	// 3. Betty on the same budget trains for several epochs and learns.
	betty, err := core.BuildSAGE(ds, core.Options{
		Seed: 5, Hidden: 32, Fanouts: []int{5, 10},
		Device: device.New(capacity, device.DefaultCostModel()),
	})
	if err != nil {
		t.Fatal(err)
	}
	betty.Engine.Tracker = memory.NewErrorTracker()
	var k int
	for e := 0; e < 10; e++ {
		st, err := betty.Engine.TrainEpochMicro()
		if err != nil {
			t.Fatalf("epoch %d: %v", e, err)
		}
		if st.PeakBytes > capacity {
			t.Fatalf("epoch %d peak %d exceeded capacity %d", e, st.PeakBytes, capacity)
		}
		k = st.K
	}
	if k < 2 {
		t.Fatalf("planner never partitioned (K=%d)", k)
	}
	acc, err := betty.Engine.TestAccuracy()
	if err != nil {
		t.Fatal(err)
	}
	if acc < 2.0/float64(ds.NumClasses) {
		t.Fatalf("accuracy %.3f no better than chance", acc)
	}

	// 4. Checkpoint the model and restore it into a fresh instance.
	var buf bytes.Buffer
	sage := betty.Model.(*nn.GraphSAGE)
	if err := checkpoint.Save(&buf, sage, map[string]string{"acc": "trained"}); err != nil {
		t.Fatal(err)
	}
	restoredSetup, err := core.BuildSAGE(ds, core.Options{Seed: 999, Hidden: 32, Fanouts: []int{5, 10}})
	if err != nil {
		t.Fatal(err)
	}
	restored := restoredSetup.Model.(*nn.GraphSAGE)
	if _, err := checkpoint.Load(&buf, restored); err != nil {
		t.Fatal(err)
	}

	// 5. Layer-wise inference with the restored model scores the same
	// test accuracy class as sampled evaluation of the original.
	infAcc, err := core.InferAccuracy(restored, ds.Graph, ds.Features, ds.Labels, ds.TestIdx, 512)
	if err != nil {
		t.Fatal(err)
	}
	if infAcc < acc-0.15 {
		t.Fatalf("restored layer-wise accuracy %.3f far below sampled %.3f", infAcc, acc)
	}
}

func TestEndToEndMultiDeviceMatchesSingle(t *testing.T) {
	ds, err := dataset.LoadScaled("ogbn-products", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	single, err := core.BuildSAGE(ds, core.Options{Seed: 6, Hidden: 16, Fanouts: []int{3, 5}, FixedK: 4})
	if err != nil {
		t.Fatal(err)
	}
	sst, err := single.Engine.TrainEpochMicro()
	if err != nil {
		t.Fatal(err)
	}

	multiSetup, err := core.BuildSAGE(ds, core.Options{Seed: 6, Hidden: 16, Fanouts: []int{3, 5}, FixedK: 4})
	if err != nil {
		t.Fatal(err)
	}
	md := &core.MultiDevice{
		Engine: multiSetup.Engine,
		Devices: []*device.Device{
			device.New(device.GiB, device.DefaultCostModel()),
			device.New(device.GiB, device.DefaultCostModel()),
		},
	}
	mst, err := md.TrainEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if mst.K != sst.K {
		t.Fatalf("K differs: %d vs %d", mst.K, sst.K)
	}
	// same loss (weighted sums of the same micro-batch losses)
	if d := mst.Loss - sst.Loss; d > 1e-6 || d < -1e-6 {
		t.Fatalf("loss differs: %v vs %v", mst.Loss, sst.Loss)
	}
}
