// Package betty is a from-scratch Go reproduction of "Betty: Enabling
// Large-Scale GNN Training with Batch-Level Graph Partitioning"
// (Yang, Zhang, Dong, Li — ASPLOS 2023).
//
// The library partitions a GNN training batch — a multi-level bipartite
// graph — into micro-batches whose accumulated gradients are exactly the
// full-batch gradient, while the peak device memory drops to that of the
// largest micro-batch. Its two core techniques are redundancy-embedded
// graph (REG) partitioning, which minimizes input nodes duplicated across
// micro-batches, and memory-aware re-partitioning, which picks the
// partition count from an analytical memory estimate instead of
// trial-and-error OOM.
//
// Entry points:
//
//   - internal/core: the Betty engine (planning + micro-batch training)
//   - internal/reg: REG construction and the batch partitioners
//   - internal/memory: the memory estimator and the planner
//   - internal/bench: regenerators for every table and figure of the paper
//   - cmd/bettybench: CLI over internal/bench
//   - examples/: runnable walkthroughs
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory, and EXPERIMENTS.md for paper-vs-measured results.
package betty
