package betty_test

// The repository-level benchmark suite: one testing.B benchmark per table
// and figure of the paper (each drives the same regenerator as
// cmd/bettybench, at a reduced dataset scale so `go test -bench=.` stays
// tractable), plus micro-benchmarks of the substrate operations the system
// is built from (sampling, REG construction, partitioning, slicing,
// forward/backward, estimation).

import (
	"fmt"
	"io"
	"testing"

	"betty/internal/bench"
	"betty/internal/core"
	"betty/internal/dataset"
	"betty/internal/graph"
	"betty/internal/memory"
	"betty/internal/nn"
	"betty/internal/parallel"
	"betty/internal/partition"
	"betty/internal/reg"
	"betty/internal/rng"
	"betty/internal/sample"
	"betty/internal/tensor"
	"betty/internal/train"
)

// benchScale shrinks every experiment's dataset for benchmarking; the
// full-scale numbers in EXPERIMENTS.md come from cmd/bettybench.
const benchScale = 0.15

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := bench.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	opts := bench.Options{Scale: benchScale, Epochs: 3, Log: nil}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables, err := e.Run(opts)
		if err != nil {
			b.Fatal(err)
		}
		for _, t := range tables {
			t.Render(io.Discard)
		}
	}
}

// --- one benchmark per paper table/figure ---

func BenchmarkFig02MemoryWall(b *testing.B)            { runExperiment(b, "fig2") }
func BenchmarkFig03MemoryBreakdown(b *testing.B)       { runExperiment(b, "fig3") }
func BenchmarkFig04FullVsMiniBatch(b *testing.B)       { runExperiment(b, "fig4") }
func BenchmarkFig09DegreeImbalance(b *testing.B)       { runExperiment(b, "fig9") }
func BenchmarkFig10BreakingTheWall(b *testing.B)       { runExperiment(b, "fig10") }
func BenchmarkFig11MaxMemoryReduction(b *testing.B)    { runExperiment(b, "fig11") }
func BenchmarkFig12MemoryTimeTradeoff(b *testing.B)    { runExperiment(b, "fig12") }
func BenchmarkFig13Convergence(b *testing.B)           { runExperiment(b, "fig13") }
func BenchmarkFig14TrainingTime(b *testing.B)          { runExperiment(b, "fig14") }
func BenchmarkFig15ComputationEfficiency(b *testing.B) { runExperiment(b, "fig15") }
func BenchmarkFig16Redundancy(b *testing.B)            { runExperiment(b, "fig16") }
func BenchmarkTab02LoadImbalance(b *testing.B)         { runExperiment(b, "tab2") }
func BenchmarkTab05Accuracy(b *testing.B)              { runExperiment(b, "tab5") }
func BenchmarkTab06MicroVsMini(b *testing.B)           { runExperiment(b, "tab6") }
func BenchmarkTab07EstimationError(b *testing.B)       { runExperiment(b, "tab7") }

// --- ablation benches for the design choices DESIGN.md calls out ---

func BenchmarkAblREG(b *testing.B)     { runExperiment(b, "abl-reg") }
func BenchmarkAblFM(b *testing.B)      { runExperiment(b, "abl-fm") }
func BenchmarkAblMatch(b *testing.B)   { runExperiment(b, "abl-match") }
func BenchmarkAblRB(b *testing.B)      { runExperiment(b, "abl-rb") }
func BenchmarkAblPlanner(b *testing.B) { runExperiment(b, "abl-planner") }

// --- substrate micro-benchmarks ---

func benchDataset(b *testing.B) *dataset.Dataset {
	b.Helper()
	ds, err := dataset.LoadScaled("ogbn-products", 0.2)
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

func benchBatch(b *testing.B, ds *dataset.Dataset, fanouts []int) []*graph.Block {
	b.Helper()
	blocks, err := sample.New(fanouts, 1).Sample(ds.Graph, ds.TrainIdx)
	if err != nil {
		b.Fatal(err)
	}
	return blocks
}

func BenchmarkNeighborSampling(b *testing.B) {
	ds := benchDataset(b)
	s := sample.New([]int{5, 10}, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Sample(ds.Graph, ds.TrainIdx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkREGConstruction(b *testing.B) {
	ds := benchDataset(b)
	blocks := benchBatch(b, ds, []int{5, 10})
	last := blocks[len(blocks)-1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reg.BuildREG(last); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkREGConstructionFast(b *testing.B) {
	ds := benchDataset(b)
	blocks := benchBatch(b, ds, []int{5, 10})
	last := blocks[len(blocks)-1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reg.BuildREGFast(last); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMatMulParallel measures the row-blocked matmul kernel across
// worker counts; sub-benchmark names carry the count so speedups read
// directly off `go test -bench MatMulParallel`.
func BenchmarkMatMulParallel(b *testing.B) {
	r := rng.New(1)
	x := tensor.New(1024, 256)
	x.Randn(r, 1)
	y := tensor.New(256, 256)
	y.Randn(r, 1)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			defer parallel.SetWorkers(parallel.SetWorkers(w))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tensor.MatMul(x, y)
			}
		})
	}
}

// BenchmarkBuildREGFastParallel measures sharded REG construction across
// worker counts on the same batch as BenchmarkREGConstructionFast.
func BenchmarkBuildREGFastParallel(b *testing.B) {
	ds := benchDataset(b)
	blocks := benchBatch(b, ds, []int{5, 10})
	last := blocks[len(blocks)-1]
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			defer parallel.SetWorkers(parallel.SetWorkers(w))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := reg.BuildREGFast(last); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMetisPartition(b *testing.B) {
	ds := benchDataset(b)
	blocks := benchBatch(b, ds, []int{5, 10})
	g, err := reg.BuildREG(blocks[len(blocks)-1])
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (&partition.Metis{Seed: uint64(i)}).Partition(g, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBatchSlicing(b *testing.B) {
	ds := benchDataset(b)
	blocks := benchBatch(b, ds, []int{5, 10})
	groups, err := (reg.BettyBatch{Seed: 1}).PartitionBatch(blocks[len(blocks)-1], 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, sel := range groups {
			if _, err := graph.SliceBatch(blocks, sel); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkMemoryEstimate(b *testing.B) {
	ds := benchDataset(b)
	blocks := benchBatch(b, ds, []int{5, 10})
	model, err := nn.NewGraphSAGE(nn.Config{
		InDim: ds.FeatureDim(), Hidden: 64, OutDim: ds.NumClasses,
		Layers: 2, Aggregator: nn.Mean,
	}, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	spec := memory.SpecFromSAGE(model, nn.NewAdam(model, 0.01))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := memory.Estimate(blocks, spec); err != nil {
			b.Fatal(err)
		}
	}
}

func benchForwardBackward(b *testing.B, agg nn.Aggregator) {
	b.Helper()
	ds := benchDataset(b)
	blocks := benchBatch(b, ds, []int{3, 5})
	model, err := nn.NewGraphSAGE(nn.Config{
		InDim: ds.FeatureDim(), Hidden: 64, OutDim: ds.NumClasses,
		Layers: 2, Aggregator: agg,
	}, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	x, err := ds.GatherFeatures(blocks[0].SrcNID)
	if err != nil {
		b.Fatal(err)
	}
	labels := ds.GatherLabels(blocks[len(blocks)-1].DstNID)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp := tensor.NewTape()
		logits := model.Forward(tp, blocks, tensor.Leaf(x))
		loss := tp.SoftmaxCrossEntropy(logits, labels)
		tp.Backward(loss)
		nn.ZeroGrad(model)
	}
}

func BenchmarkSAGEMeanForwardBackward(b *testing.B) { benchForwardBackward(b, nn.Mean) }

// BenchmarkTrainStep measures the full training step — micro-batch
// forward+backward plus the optimizer — across worker counts and with the
// tape buffer pool on and off, the sweep cmd/bettybench -step records in
// BENCH_step.json. Sub-benchmark names carry both knobs so speedups and
// allocation reductions read directly off `go test -bench TrainStep`.
func BenchmarkTrainStep(b *testing.B) {
	ds := benchDataset(b)
	seeds := ds.TrainIdx
	if len(seeds) > 1024 {
		seeds = seeds[:1024]
	}
	blocks, err := sample.New([]int{5, 10}, 1).Sample(ds.Graph, seeds)
	if err != nil {
		b.Fatal(err)
	}
	model, err := nn.NewGraphSAGE(nn.Config{
		InDim: ds.FeatureDim(), Hidden: 64, OutDim: ds.NumClasses,
		Layers: 2, Aggregator: nn.Mean,
	}, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	runner := train.NewRunner(model, ds, nn.NewAdam(model, 0.01), nil)
	for _, pool := range []bool{true, false} {
		for _, w := range []int{1, 2, 4, 8} {
			name := fmt.Sprintf("workers=%d/pool=on", w)
			if !pool {
				name = fmt.Sprintf("workers=%d/pool=off", w)
			}
			b.Run(name, func(b *testing.B) {
				defer parallel.SetWorkers(parallel.SetWorkers(w))
				defer tensor.SetPooling(tensor.SetPooling(pool))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := runner.RunMicroBatch(blocks, 1); err != nil {
						b.Fatal(err)
					}
					runner.Step()
				}
			})
		}
	}
}
func BenchmarkSAGEPoolForwardBackward(b *testing.B) { benchForwardBackward(b, nn.Pool) }
func BenchmarkSAGELSTMForwardBackward(b *testing.B) { benchForwardBackward(b, nn.LSTM) }

func BenchmarkBettyEpoch(b *testing.B) {
	ds := benchDataset(b)
	s, err := core.BuildSAGE(ds, core.Options{
		Seed: 1, Hidden: 64, Fanouts: []int{3, 5}, FixedK: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Engine.TrainEpochMicro(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatMul256(b *testing.B) {
	r := rng.New(1)
	x := tensor.New(256, 256)
	y := tensor.New(256, 256)
	x.Randn(r, 1)
	y.Randn(r, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(x, y)
	}
}

func BenchmarkDatasetGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := dataset.LoadScaled("ogbn-arxiv", 0.1); err != nil {
			b.Fatal(err)
		}
	}
}
