module betty

go 1.22
